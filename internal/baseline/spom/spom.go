// Package spom implements an English–Hebrew order-maintenance race
// detector for series-parallel (spawn-sync) programs, after Bender,
// Fineman, Gilbert and Leiserson's SP-order algorithm (SPAA 2004 — the
// paper's reference [3]).
//
// Two order-maintenance lists hold every task segment (the ops between
// consecutive fork/join points of a task): the English list orders
// children before continuations, the Hebrew list continuations before
// children. Segment x precedes segment y in the series-parallel DAG
// exactly when x comes before y in BOTH lists — an online Dushnik–Miller
// 2-realizer, which is precisely the structure the paper generalizes
// from SP graphs to all two-dimensional lattices (Remark 3).
//
// Under the serial fork-first schedule the English order coincides with
// execution order, so a prior access races with the current operation
// iff it does not precede it in the Hebrew list. Per-location state is
// one writer and one reader segment reference — Θ(1), like SP-bags.
//
// Like SP-bags, the detector is meaningful only for spawn-sync traces;
// feeding it left-neighbor-stealing programs is undefined.
package spom

import (
	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/obs"
	"repro/internal/om"
)

// segment is one maximal run of operations of a task between fork/join
// boundaries, labeled in both lists.
type segment struct {
	e, h *om.Item
	task fj.ID
}

// Detector is the SP-order detector, consuming fj events of a spawn-sync
// program.
type Detector struct {
	english *om.List
	hebrew  *om.List

	seg      []*segment // current segment per task
	segments int

	locs map[core.Addr]*locState

	// MaxRaces bounds retained reports; 0 keeps all.
	MaxRaces int
	races    []core.Race
	count    int

	// Operation counters: listInserts counts order-maintenance list
	// insertions (two lists × one item per new segment), orderQueries
	// counts precedes evaluations (each up to two Before calls).
	reads, writes uint64
	listInserts   uint64
	orderQueries  uint64
}

type locState struct {
	reader, writer *segment
}

// New returns a detector with the root task's initial segment labeled.
func New() *Detector {
	d := &Detector{
		english: om.New(),
		hebrew:  om.New(),
		locs:    make(map[core.Addr]*locState),
	}
	root := &segment{e: d.english.InsertFirst(), h: d.hebrew.InsertFirst(), task: 0}
	d.seg = []*segment{root}
	d.segments = 1
	d.listInserts = 2
	return d
}

func (d *Detector) current(t fj.ID) *segment {
	for len(d.seg) <= t {
		d.seg = append(d.seg, nil)
	}
	return d.seg[t]
}

func (d *Detector) setSegment(t fj.ID, s *segment) {
	for len(d.seg) <= t {
		d.seg = append(d.seg, nil)
	}
	d.seg[t] = s
	d.segments++
}

// precedes reports x ≺ y in the SP DAG: before in both lists.
func (d *Detector) precedes(x, y *segment) bool {
	d.orderQueries++
	return x == y || (x.e.Before(y.e) && x.h.Before(y.h))
}

func (d *Detector) loc(a core.Addr) *locState {
	st, ok := d.locs[a]
	if !ok {
		st = &locState{}
		d.locs[a] = st
	}
	return st
}

func (d *Detector) report(r core.Race) {
	d.count++
	if d.MaxRaces == 0 || len(d.races) < d.MaxRaces {
		d.races = append(d.races, r)
	}
}

// Event implements fj.Sink.
func (d *Detector) Event(e fj.Event) {
	switch e.Kind {
	case fj.EvBegin:
		// The child's segment was created at the fork.
	case fj.EvFork:
		s := d.current(e.T)
		// English: child then continuation after the forking segment.
		cE := d.english.InsertAfter(s.e)
		kE := d.english.InsertAfter(cE)
		// Hebrew: continuation then child after the forking segment.
		kH := d.hebrew.InsertAfter(s.h)
		cH := d.hebrew.InsertAfter(kH)
		d.listInserts += 4
		d.setSegment(e.U, &segment{e: cE, h: cH, task: e.U})
		d.setSegment(e.T, &segment{e: kE, h: kH, task: e.T})
	case fj.EvJoin:
		// The joined child has halted; by induction its final segment is
		// the Hebrew maximum of its whole subtree, so the continuation
		// goes right after it in Hebrew (and after the joiner's own
		// segment in English).
		p := d.current(e.T)
		c := d.current(e.U)
		kE := d.english.InsertAfter(p.e)
		kH := d.hebrew.InsertAfter(c.h)
		d.listInserts += 2
		d.setSegment(e.T, &segment{e: kE, h: kH, task: e.T})
	case fj.EvHalt:
		// The final segment stays recorded for the parent's join.
	case fj.EvRead:
		d.reads++
		cur := d.current(e.T)
		st := d.loc(e.Loc)
		if st.writer != nil && !d.precedes(st.writer, cur) {
			d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: st.writer.task, Kind: core.WriteRead})
		}
		if st.reader == nil || d.precedes(st.reader, cur) {
			st.reader = cur
		}
	case fj.EvWrite:
		d.writes++
		cur := d.current(e.T)
		st := d.loc(e.Loc)
		if st.writer != nil && !d.precedes(st.writer, cur) {
			d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: st.writer.task, Kind: core.WriteWrite})
		}
		if st.reader != nil && !d.precedes(st.reader, cur) {
			d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: st.reader.task, Kind: core.ReadWrite})
		}
		st.writer = cur
	}
}

// Races returns the retained reports.
func (d *Detector) Races() []core.Race { return d.races }

// Count returns the total number of reports.
func (d *Detector) Count() int { return d.count }

// Racy reports whether any race was detected.
func (d *Detector) Racy() bool { return d.count > 0 }

// Locations returns the number of tracked locations.
func (d *Detector) Locations() int { return len(d.locs) }

// Segments returns the number of task segments labeled so far — the
// structure's Θ(forks + joins) bookkeeping.
func (d *Detector) Segments() int { return d.segments }

// BytesPerLocation reports the constant per-location footprint.
func (d *Detector) BytesPerLocation() int { return 16 } // two pointers

// MemoryBytes estimates total detector state: two list items per segment
// plus per-location pointers.
func (d *Detector) MemoryBytes() int {
	const itemBytes = 40 // tag + three pointers, per list
	const mapEntryOverhead = 16
	return d.segments*2*itemBytes + len(d.locs)*(16+mapEntryOverhead)
}

// EventBatch implements fj.BatchSink: one dynamic dispatch per batch of
// events instead of one per event, matching the 2D detector's batched
// ingestion path so cross-engine comparisons stay fair.
func (d *Detector) EventBatch(events []fj.Event) {
	for i := range events {
		d.Event(events[i])
	}
}

// Stats reports the detector's operation counts: order-maintenance list
// insertions (Θ(1) amortized each) and precedence queries — the
// 2-realizer analogue of the 2D detector's sup queries.
func (d *Detector) Stats() obs.Stats {
	s := obs.Stats{
		Reads:        d.reads,
		Writes:       d.writes,
		ListInserts:  d.listInserts,
		OrderQueries: d.orderQueries,
		Races:        uint64(d.count),
		Locations:    uint64(len(d.locs)),
	}
	if len(d.locs) > 0 {
		s.BytesPerLocation = float64(d.BytesPerLocation())
	}
	return s
}
