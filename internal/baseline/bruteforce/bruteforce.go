// Package bruteforce is the ground-truth oracle: it materializes the full
// task graph of an execution (the naive algorithm of Section 2.3, tracking
// the complete R and W sets), computes its reachability closure, and
// enumerates every pair of conflicting concurrent accesses. Its space is
// Θ(operations) — the cost the paper's detector avoids — which is exactly
// why it serves as the reference for soundness/precision experiments
// rather than as a practical detector.
package bruteforce

import (
	"sort"

	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/graph"
)

// Pair is a racing pair of accesses, ordered by execution (First precedes
// Second in the serial schedule).
type Pair struct {
	First, Second fj.Access
}

// Report is the exact race analysis of one execution.
type Report struct {
	// Pairs lists every conflicting concurrent access pair, ordered by
	// the position of the second access (then the first): the leading
	// pair is "the first race" that a precise online detector must flag.
	Pairs []Pair
	// Ops is the number of memory operations analyzed.
	Ops int
	// Vertices is the task-graph size.
	Vertices int
}

// Racy reports whether any race exists.
func (r *Report) Racy() bool { return len(r.Pairs) > 0 }

// First returns the first race pair in execution order; ok is false when
// the execution is race-free.
func (r *Report) First() (Pair, bool) {
	if len(r.Pairs) == 0 {
		return Pair{}, false
	}
	return r.Pairs[0], true
}

// RacyLocations returns the distinct racy addresses, ascending.
func (r *Report) RacyLocations() []core.Addr {
	seen := map[core.Addr]bool{}
	var locs []core.Addr
	for _, p := range r.Pairs {
		if !seen[p.First.Loc] {
			seen[p.First.Loc] = true
			locs = append(locs, p.First.Loc)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// Analyze replays a recorded trace, rebuilds the task graph, and returns
// the exact race report.
func Analyze(tr *fj.Trace) *Report {
	b := fj.NewGraphBuilder()
	tr.Replay(b)
	return AnalyzeBuilt(b)
}

// AnalyzeBuilt computes the exact race report from an already-built graph.
func AnalyzeBuilt(b *fj.GraphBuilder) *Report {
	g := b.Graph()
	r := graph.NewReach(g)
	rep := &Report{Ops: len(b.Accesses), Vertices: g.N()}
	// Group accesses by location to avoid the full quadratic blowup over
	// unrelated addresses.
	byLoc := map[core.Addr][]fj.Access{}
	for _, a := range b.Accesses {
		byLoc[a.Loc] = append(byLoc[a.Loc], a)
	}
	for _, accs := range byLoc {
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				ai, aj := accs[i], accs[j]
				if !ai.Write && !aj.Write {
					continue
				}
				if r.Concurrent(ai.Vertex, aj.Vertex) {
					rep.Pairs = append(rep.Pairs, Pair{First: ai, Second: aj})
				}
			}
		}
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		if rep.Pairs[i].Second.Vertex != rep.Pairs[j].Second.Vertex {
			return rep.Pairs[i].Second.Vertex < rep.Pairs[j].Second.Vertex
		}
		return rep.Pairs[i].First.Vertex < rep.Pairs[j].First.Vertex
	})
	return rep
}
