package bruteforce

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fj"
)

func figure2Trace(t *testing.T) *fj.Trace {
	t.Helper()
	var tr fj.Trace
	_, err := fj.Run(func(t *fj.Task) {
		const r = core.Addr(0x10)
		a := t.Fork(func(a *fj.Task) { a.Read(r) })
		t.Read(r)
		c := t.Fork(func(c *fj.Task) { c.Join(a) })
		t.Write(r)
		t.Join(c)
	}, &tr, fj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &tr
}

func TestFigure2ExactlyOneRacingPair(t *testing.T) {
	rep := Analyze(figure2Trace(t))
	if !rep.Racy() {
		t.Fatal("Figure 2 race missed by ground truth")
	}
	if len(rep.Pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly A–D", rep.Pairs)
	}
	p, ok := rep.First()
	if !ok {
		t.Fatal("First failed")
	}
	// First access is A's read (task 1), second is D's write (task 0).
	if p.First.Task != 1 || p.First.Write || p.Second.Task != 0 || !p.Second.Write {
		t.Fatalf("first race pair = %+v", p)
	}
	if locs := rep.RacyLocations(); len(locs) != 1 || locs[0] != 0x10 {
		t.Fatalf("racy locations = %v", locs)
	}
	if rep.Ops != 3 {
		t.Fatalf("ops = %d, want 3", rep.Ops)
	}
}

func TestRaceFreeProgram(t *testing.T) {
	var tr fj.Trace
	_, err := fj.Run(func(t *fj.Task) {
		h := t.Fork(func(c *fj.Task) { c.Write(1) })
		t.Join(h)
		t.Read(1)
	}, &tr, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(&tr)
	if rep.Racy() {
		t.Fatalf("race-free program reported racy: %v", rep.Pairs)
	}
	if _, ok := rep.First(); ok {
		t.Fatal("First returned a pair on race-free run")
	}
	if len(rep.RacyLocations()) != 0 {
		t.Fatal("racy locations non-empty")
	}
}

func TestPairsOrderedByExecution(t *testing.T) {
	var tr fj.Trace
	_, err := fj.Run(func(t *fj.Task) {
		t.Fork(func(c *fj.Task) { c.Write(1); c.Write(2) })
		t.Write(2) // second access in execution order races first
		t.Write(1)
	}, &tr, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(&tr)
	if len(rep.Pairs) != 2 {
		t.Fatalf("pairs = %v", rep.Pairs)
	}
	first, _ := rep.First()
	if first.Second.Loc != 2 {
		t.Fatalf("first race should be on loc 2, got %v", first)
	}
	if rep.Pairs[0].Second.Vertex > rep.Pairs[1].Second.Vertex {
		t.Fatal("pairs not sorted by second access")
	}
}

func TestMultipleLocationsGrouped(t *testing.T) {
	var tr fj.Trace
	_, err := fj.Run(func(t *fj.Task) {
		t.Fork(func(c *fj.Task) {
			c.Write(1)
			c.Write(2)
			c.Write(3)
		})
		t.Write(1)
		t.Write(3)
	}, &tr, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(&tr)
	locs := rep.RacyLocations()
	if len(locs) != 2 || locs[0] != 1 || locs[1] != 3 {
		t.Fatalf("racy locations = %v, want [1 3]", locs)
	}
}
