package naive

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline/bruteforce"
	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/workload"
)

func TestFigure2Naive(t *testing.T) {
	d := New()
	_, err := fj.Run(func(t *fj.Task) {
		const r = core.Addr(0x10)
		a := t.Fork(func(a *fj.Task) { a.Read(r) })
		t.Read(r)
		c := t.Fork(func(c *fj.Task) { c.Join(a) })
		t.Write(r)
		t.Join(c)
	}, d, fj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Racy() || d.Races()[0].Kind != core.ReadWrite {
		t.Fatalf("races = %v", d.Races())
	}
}

// TestParityWithGroundTruth: the naive detector is sound and precise by
// construction; verify against the offline oracle.
func TestParityWithGroundTruth(t *testing.T) {
	f := func(seed int64) bool {
		w := workload.ForkJoin{Seed: seed, Ops: 40, MaxDepth: 4, Mix: workload.Mix{Locs: 4, ReadFrac: 0.6}}
		var tr fj.Trace
		d := New()
		if _, err := w.Run(fj.MultiSink{&tr, d}); err != nil {
			return false
		}
		return d.Racy() == bruteforce.Analyze(&tr).Racy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestLocationBytesGrowWithAccesses: Θ(accesses) per location — one rung
// worse than the vector clocks' Θ(tasks).
func TestLocationBytesGrowWithAccesses(t *testing.T) {
	bytesFor := func(ops int) int {
		d := New()
		_, err := fj.Run(func(t *fj.Task) {
			for i := 0; i < ops; i++ {
				t.Read(1)
			}
		}, d, fj.Options{AutoJoin: true})
		if err != nil {
			t.Fatal(err)
		}
		return d.LocationBytes()
	}
	small, large := bytesFor(10), bytesFor(1000)
	if large < 50*small {
		t.Fatalf("access sets did not grow linearly: %d -> %d", small, large)
	}
}

func TestReadReadNotFlagged(t *testing.T) {
	d := New()
	_, err := fj.Run(func(t *fj.Task) {
		t.Fork(func(c *fj.Task) { c.Read(3) })
		t.Read(3)
	}, d, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Racy() {
		t.Fatal("read-read flagged")
	}
}

func TestAccountingSurface(t *testing.T) {
	d := New()
	d.MaxRaces = 1
	_, err := fj.Run(func(t *fj.Task) {
		for i := 0; i < 3; i++ {
			t.Fork(func(c *fj.Task) { c.Write(1) })
		}
	}, d, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() < 2 || len(d.Races()) != 1 {
		t.Fatalf("count=%d retained=%d", d.Count(), len(d.Races()))
	}
	if d.Locations() != 1 || d.MemoryBytes() <= 0 {
		t.Fatal("accounting wrong")
	}
}

func TestStats(t *testing.T) {
	d := New()
	_, err := fj.Run(func(t *fj.Task) {
		t.Write(1)
		t.Write(1) // scans the one prior write
		t.Read(1)  // scans both prior writes
	}, d, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 2 {
		t.Errorf("reads/writes = %d/%d, want 1/2", s.Reads, s.Writes)
	}
	if s.SetScans != 3 {
		t.Errorf("set scans = %d, want 3 (1 at second write + 2 at read)", s.SetScans)
	}
	if s.Locations != 1 || s.BytesPerLocation <= 0 {
		t.Errorf("locations = %d bytes/loc = %v", s.Locations, s.BytesPerLocation)
	}
}
