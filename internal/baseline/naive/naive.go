// Package naive implements the paper's Section 2.3 "naive algorithm" as
// a real online detector: for every location it tracks the complete sets
// R and W of prior reading and writing accesses, checking the current
// operation against every element. Ordering is decided with vector
// clocks, so the detector is sound and precise — but per-location space
// is Θ(accesses) and per-operation time is Θ(|R ∪ W|), which is exactly
// what the paper calls "prohibitively expensive both in space and time"
// and what the suprema representation eliminates.
//
// It exists as the third point on the space axis of experiment E4:
// naive Θ(accesses) > vector clocks Θ(tasks) > 2D detector Θ(1).
package naive

import (
	"repro/internal/baseline/vc"
	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/obs"
)

// access is one recorded operation: the task and its clock at the time.
type access struct {
	task  int
	clock uint32
}

type locState struct {
	reads  []access
	writes []access
}

// Detector is the naive R/W-set detector, consuming fj events.
type Detector struct {
	clocks []vc.Clock
	locs   map[core.Addr]*locState

	// MaxRaces bounds retained reports; 0 keeps all.
	MaxRaces int
	races    []core.Race
	count    int

	// setScans counts R/W-set elements examined — the Θ(|R ∪ W|)
	// per-operation factor the suprema representation eliminates.
	reads, writes uint64
	setScans      uint64
	clockJoins    uint64
	clockEntries  uint64
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{locs: make(map[core.Addr]*locState)}
}

func (d *Detector) clock(t int) vc.Clock {
	for len(d.clocks) <= t {
		d.clocks = append(d.clocks, nil)
	}
	if d.clocks[t] == nil {
		d.clocks[t] = vc.Clock{}.Set(t, 1)
	}
	return d.clocks[t]
}

func (d *Detector) loc(a core.Addr) *locState {
	st, ok := d.locs[a]
	if !ok {
		st = &locState{}
		d.locs[a] = st
	}
	return st
}

func (d *Detector) report(r core.Race) {
	d.count++
	if d.MaxRaces == 0 || len(d.races) < d.MaxRaces {
		d.races = append(d.races, r)
	}
}

// Event implements fj.Sink.
func (d *Detector) Event(e fj.Event) {
	switch e.Kind {
	case fj.EvBegin:
		d.clock(e.T)
	case fj.EvFork:
		parent := d.clock(e.T)
		child := parent.Copy().Set(e.U, 1)
		for len(d.clocks) <= e.U {
			d.clocks = append(d.clocks, nil)
		}
		d.clocks[e.U] = child
		d.clocks[e.T] = parent.Set(e.T, parent.Get(e.T)+1)
	case fj.EvJoin:
		other := d.clock(e.U)
		d.clockJoins++
		d.clockEntries += uint64(len(other))
		merged := d.clock(e.T).Join(other)
		d.clocks[e.T] = merged.Set(e.T, merged.Get(e.T)+1)
	case fj.EvHalt:
	case fj.EvRead:
		d.reads++
		ct := d.clock(e.T)
		st := d.loc(e.Loc)
		// K = W: check every prior write.
		for _, w := range st.writes {
			d.setScans++
			if !ct.LeqAt(w.task, w.clock) {
				d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: w.task, Kind: core.WriteRead})
				break
			}
		}
		st.reads = append(st.reads, access{task: e.T, clock: ct.Get(e.T)})
	case fj.EvWrite:
		d.writes++
		ct := d.clock(e.T)
		st := d.loc(e.Loc)
		// K = R ∪ W: check everything.
		for _, r := range st.reads {
			d.setScans++
			if !ct.LeqAt(r.task, r.clock) {
				d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: r.task, Kind: core.ReadWrite})
				break
			}
		}
		for _, w := range st.writes {
			d.setScans++
			if !ct.LeqAt(w.task, w.clock) {
				d.report(core.Race{Loc: e.Loc, Current: e.T, Prior: w.task, Kind: core.WriteWrite})
				break
			}
		}
		st.writes = append(st.writes, access{task: e.T, clock: ct.Get(e.T)})
	}
}

// Races returns the retained reports.
func (d *Detector) Races() []core.Race { return d.races }

// Count returns the total number of reports.
func (d *Detector) Count() int { return d.count }

// Racy reports whether any race was detected.
func (d *Detector) Racy() bool { return d.count > 0 }

// Locations returns the number of tracked locations.
func (d *Detector) Locations() int { return len(d.locs) }

// LocationBytes reports the total bytes of per-location access sets —
// Θ(accesses), the quantity the paper's representation collapses to Θ(1).
func (d *Detector) LocationBytes() int {
	total := 0
	for _, st := range d.locs {
		total += (len(st.reads) + len(st.writes)) * 8
	}
	return total
}

// MemoryBytes estimates total detector state.
func (d *Detector) MemoryBytes() int {
	total := d.LocationBytes()
	for _, c := range d.clocks {
		total += c.Bytes()
	}
	const mapEntryOverhead = 16
	return total + len(d.locs)*mapEntryOverhead
}

// EventBatch implements fj.BatchSink: one dynamic dispatch per batch of
// events instead of one per event, matching the 2D detector's batched
// ingestion path so cross-engine comparisons stay fair.
func (d *Detector) EventBatch(events []fj.Event) {
	for i := range events {
		d.Event(events[i])
	}
}

// Stats reports the detector's operation counts. SetScans is the
// defining cost: one increment per prior access examined, growing with
// history where every other engine's per-operation work stays bounded.
func (d *Detector) Stats() obs.Stats {
	s := obs.Stats{
		Reads:        d.reads,
		Writes:       d.writes,
		SetScans:     d.setScans,
		ClockJoins:   d.clockJoins,
		ClockEntries: d.clockEntries,
		Races:        uint64(d.count),
		Locations:    uint64(len(d.locs)),
	}
	if n := len(d.locs); n > 0 {
		s.BytesPerLocation = float64(d.LocationBytes()) / float64(n)
	}
	return s
}
