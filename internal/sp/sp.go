// Package sp implements series-parallel graph theory (Section 2.1): SP
// graph construction by series and parallel composition, and SP
// recognition by reduction. SP graphs are the task-graph class of Cilk's
// spawn-sync and X10's async-finish; the paper's 2D lattices strictly
// contain them, and the experiments use this package to certify which
// side of that line a given task graph falls on.
//
// An SP graph here is a two-terminal directed multigraph: either a single
// arc source→sink, the series composition S(G1, G2) (G1's sink glued to
// G2's source), or the parallel composition P(G1, G2) (sources glued,
// sinks glued).
package sp

import (
	"fmt"

	"repro/internal/graph"
)

// Graph is a two-terminal series-parallel graph under construction.
// Vertices are graph.V identifiers in G; Source and Sink are its
// terminals.
type Graph struct {
	G      *graph.Digraph
	Source graph.V
	Sink   graph.V
}

// Edge returns the atomic SP graph: one arc source→sink.
func Edge() *Graph {
	g := graph.New(2)
	g.AddArc(0, 1)
	return &Graph{G: g, Source: 0, Sink: 1}
}

// merge copies other's vertices into dst, returning the vertex-id offset
// mapping function.
func merge(dst *graph.Digraph, other *graph.Digraph) func(graph.V) graph.V {
	base := dst.N()
	for i := 0; i < other.N(); i++ {
		dst.AddVertex()
	}
	remap := func(v graph.V) graph.V { return base + v }
	for _, a := range other.Arcs() {
		dst.AddArc(remap(a.S), remap(a.T))
	}
	return remap
}

// contract redirects all arcs incident to from onto to. The vertex from
// becomes isolated; Compact removes isolated vertices at the end.
func contract(g *graph.Digraph, from, to graph.V) *graph.Digraph {
	h := graph.New(g.N())
	for _, a := range g.Arcs() {
		s, t := a.S, a.T
		if s == from {
			s = to
		}
		if t == from {
			t = to
		}
		h.AddArc(s, t)
	}
	return h
}

// Series returns S(g1, g2): g1 before g2, glued sink-to-source.
func Series(g1, g2 *Graph) *Graph {
	g := g1.G.Clone()
	remap := merge(g, g2.G)
	merged := contract(g, remap(g2.Source), g1.Sink)
	out := &Graph{G: merged, Source: g1.Source, Sink: remap(g2.Sink)}
	return out.compact()
}

// Parallel returns P(g1, g2): sources glued, sinks glued.
func Parallel(g1, g2 *Graph) *Graph {
	g := g1.G.Clone()
	remap := merge(g, g2.G)
	merged := contract(g, remap(g2.Source), g1.Source)
	merged = contract(merged, remap(g2.Sink), g1.Sink)
	out := &Graph{G: merged, Source: g1.Source, Sink: g1.Sink}
	return out.compact()
}

// compact removes isolated vertices (left behind by contraction),
// renumbering the rest densely.
func (s *Graph) compact() *Graph {
	g := s.G
	newID := make([]graph.V, g.N())
	h := graph.New(0)
	for v := 0; v < g.N(); v++ {
		if g.InDeg(v) == 0 && g.OutDeg(v) == 0 && v != s.Source && v != s.Sink {
			newID[v] = -1
			continue
		}
		newID[v] = h.AddVertex()
	}
	for _, a := range g.Arcs() {
		h.AddArc(newID[a.S], newID[a.T])
	}
	return &Graph{G: h, Source: newID[s.Source], Sink: newID[s.Sink]}
}

// IsSP reports whether a two-terminal DAG is series-parallel, by
// exhaustive series/parallel reduction: repeatedly remove parallel
// multi-arcs and contract interior vertices with in-degree and out-degree
// one. The graph is SP iff it reduces to a single arc source→sink
// (Valdes–Tarjan–Lawler; quadratic implementation, ample for task-graph
// sizes in tests and experiments).
func IsSP(g *graph.Digraph, source, sink graph.V) bool {
	if g.N() == 0 {
		return false
	}
	// Degenerate single-vertex graph (the task graph of a program that
	// performs no operations): trivially series-parallel.
	if source == sink {
		return g.M() == 0
	}
	// Work on multiset adjacency: count arcs between ordered pairs.
	type key struct{ s, t graph.V }
	arcs := map[key]int{}
	outdeg := make([]int, g.N())
	indeg := make([]int, g.N())
	for _, a := range g.Arcs() {
		arcs[key{a.S, a.T}]++
		outdeg[a.S]++
		indeg[a.T]++
	}
	// Parallel reduction: collapse multi-arcs to one.
	reduceParallel := func() bool {
		changed := false
		for k, c := range arcs {
			if c > 1 {
				arcs[k] = 1
				outdeg[k.s] -= c - 1
				indeg[k.t] -= c - 1
				changed = true
			}
		}
		return changed
	}
	// Series reduction: an interior vertex v with indeg=outdeg=1 is
	// bypassed: (u,v),(v,w) become (u,w).
	reduceSeries := func() bool {
		for v := 0; v < g.N(); v++ {
			if v == source || v == sink || indeg[v] != 1 || outdeg[v] != 1 {
				continue
			}
			var u, w graph.V = -1, -1
			for k, c := range arcs {
				if c == 0 {
					continue
				}
				if k.t == v {
					u = k.s
				}
				if k.s == v {
					w = k.t
				}
			}
			if u < 0 || w < 0 || u == v || w == v {
				continue
			}
			arcs[key{u, v}]--
			arcs[key{v, w}]--
			arcs[key{u, w}]++
			indeg[v] = 0
			outdeg[v] = 0
			// u's out-degree and w's in-degree are unchanged (one arc
			// swapped for another).
			return true
		}
		return false
	}
	for {
		p := reduceParallel()
		s := reduceSeries()
		if !p && !s {
			break
		}
	}
	// SP iff exactly one arc remains: source→sink.
	remaining := 0
	for k, c := range arcs {
		if c > 0 {
			remaining += c
			if k.s != source || k.t != sink {
				return false
			}
		}
	}
	return remaining == 1
}

// Decompose builds an SP graph from a decomposition-tree expression for
// tests and examples, e.g. "S(P(e,e),P(e,e))" — e is an edge, S/P are
// compositions.
func Decompose(expr string) (*Graph, error) {
	p := &parser{src: expr}
	g, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("sp: trailing input at %d", p.pos)
	}
	return g, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) parse() (*Graph, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("sp: unexpected end of expression")
	}
	switch c := p.src[p.pos]; c {
	case 'e':
		p.pos++
		return Edge(), nil
	case 'S', 'P':
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '(' {
			return nil, fmt.Errorf("sp: expected '(' at %d", p.pos)
		}
		p.pos++
		left, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ',' {
			return nil, fmt.Errorf("sp: expected ',' at %d", p.pos)
		}
		p.pos++
		right, err := p.parse()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("sp: expected ')' at %d", p.pos)
		}
		p.pos++
		if c == 'S' {
			return Series(left, right), nil
		}
		return Parallel(left, right), nil
	default:
		return nil, fmt.Errorf("sp: unexpected %q at %d", c, p.pos)
	}
}
