package sp

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/traversal"
	"repro/internal/workload"
)

func TestEdge(t *testing.T) {
	e := Edge()
	if e.G.N() != 2 || e.G.M() != 1 || !e.G.HasArc(e.Source, e.Sink) {
		t.Fatalf("edge = %+v", e)
	}
}

func TestSeriesShape(t *testing.T) {
	s := Series(Edge(), Edge())
	if s.G.N() != 3 || s.G.M() != 2 {
		t.Fatalf("S(e,e): n=%d m=%d", s.G.N(), s.G.M())
	}
	r := graph.NewReach(s.G)
	if !r.Reachable(s.Source, s.Sink) {
		t.Fatal("sink unreachable")
	}
}

func TestParallelShape(t *testing.T) {
	p := Parallel(Edge(), Edge())
	if p.G.N() != 2 || p.G.M() != 2 {
		t.Fatalf("P(e,e): n=%d m=%d", p.G.N(), p.G.M())
	}
}

func TestIsSPAcceptsCompositions(t *testing.T) {
	exprs := []string{
		"e",
		"S(e,e)",
		"P(e,e)",
		"S(P(e,e),P(e,e))", // Figure 1's task-graph shape
		"P(S(e,e),S(e,e))",
		"S(e,P(S(e,e),e))",
		"P(P(e,e),S(e,P(e,e)))",
	}
	for _, expr := range exprs {
		g, err := Decompose(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if !IsSP(g.G, g.Source, g.Sink) {
			t.Errorf("IsSP rejected %s", expr)
		}
	}
}

func TestIsSPRejectsN(t *testing.T) {
	// The forbidden "N": s→u, s→v, u→v, u→t, v→t.
	g := graph.New(4)
	const s, u, v, tt = 0, 1, 2, 3
	g.AddArc(s, u)
	g.AddArc(s, v)
	g.AddArc(u, v)
	g.AddArc(u, tt)
	g.AddArc(v, tt)
	if IsSP(g, s, tt) {
		t.Fatal("IsSP accepted the N graph")
	}
}

func TestIsSPEmptyGraph(t *testing.T) {
	if IsSP(graph.New(0), 0, 0) {
		t.Fatal("empty graph accepted")
	}
}

func TestDecomposeErrors(t *testing.T) {
	for _, expr := range []string{"", "X", "S(e e)", "S(e,e", "S e,e)", "e junk", "S(,e)"} {
		if _, err := Decompose(expr); err == nil {
			t.Errorf("Decompose(%q) accepted", expr)
		}
	}
}

// TestSPGraphsAreTwoDimensionalLattices: the paper's containment — SP
// graphs (without parallel multi-arcs) are 2D lattices analyzable by the
// traversal machinery.
func TestSPGraphsAreTwoDimensionalLattices(t *testing.T) {
	exprs := []string{
		"S(e,e)",
		"S(P(S(e,e),S(e,e)),e)",
		"P(S(e,e),S(e,S(e,e)))",
		"S(P(S(e,e),S(e,e)),P(S(e,e),S(e,e)))",
	}
	for _, expr := range exprs {
		spg, err := Decompose(expr)
		if err != nil {
			t.Fatal(err)
		}
		p := order.NewPoset(spg.G)
		if err := p.IsLattice(); err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		left, err := traversal.NonSeparating(spg.G)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		right, err := traversal.RightToLeft(spg.G)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		real := order.Realizer{L1: left.VertexOrder(), L2: right.VertexOrder()}
		if err := real.Verify(p); err != nil {
			t.Errorf("%s: %v", expr, err)
		}
	}
}

// TestSpawnSyncGraphsAreSP: random spawn-sync programs produce SP task
// graphs (Section 2.1), certified by reduction.
func TestSpawnSyncGraphsAreSP(t *testing.T) {
	f := func(seed int64) bool {
		w := workload.SpawnSync{Seed: seed, Ops: 30, MaxDepth: 4,
			Mix: workload.Mix{Locs: 3, ReadFrac: 0.5}}
		b := fj.NewGraphBuilder()
		if _, err := w.Run(b); err != nil {
			return false
		}
		g := b.Graph()
		src, snk := g.Sources(), g.Sinks()
		if len(src) != 1 || len(snk) != 1 {
			return false
		}
		return IsSP(g, src[0], snk[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2GraphIsNotSP: the paper's Figure 2 task graph lies outside
// SP — the separation that motivates the 2D class.
func TestFigure2GraphIsNotSP(t *testing.T) {
	b := fj.NewGraphBuilder()
	_, err := fj.Run(func(t *fj.Task) {
		const r = core.Addr(0x10)
		a := t.Fork(func(a *fj.Task) { a.Read(r) })
		t.Read(r)
		c := t.Fork(func(c *fj.Task) { c.Join(a) })
		t.Write(r)
		t.Join(c)
	}, b, fj.Options{AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	src, snk := g.Sources(), g.Sinks()
	if len(src) != 1 || len(snk) != 1 {
		t.Fatal("not two-terminal")
	}
	if IsSP(g, src[0], snk[0]) {
		t.Fatal("Figure 2's task graph certified SP; it must not be")
	}
	// Yet it is a 2D lattice.
	if err := order.NewPoset(g).IsLattice(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineGridsAreNotSP: grids beyond 1×n / m×1 are non-SP — pipeline
// parallelism needs the 2D class.
func TestPipelineGridsAreNotSP(t *testing.T) {
	g := order.Grid(3, 3)
	src, snk := g.Sources(), g.Sinks()
	if IsSP(g, src[0], snk[0]) {
		t.Fatal("3x3 grid certified SP")
	}
	chain := order.Grid(1, 5)
	src, snk = chain.Sources(), chain.Sinks()
	if !IsSP(chain, src[0], snk[0]) {
		t.Fatal("1x5 chain rejected")
	}
}
