package cliflags

import "testing"

func TestParseTenantKeysFile(t *testing.T) {
	specs, err := ParseTenantKeysFile([]byte(
		"# fleet tenants\n" +
			"acme=secret:4:1048576\n" +
			"\n" +
			"  beta=bk  # trailing comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2: %+v", len(specs), specs)
	}
	if specs[0].Name != "acme" || specs[0].Key != "secret" ||
		specs[0].MaxSessions != 4 || specs[0].MaxStoreBytes != 1048576 {
		t.Errorf("acme spec = %+v", specs[0])
	}
	if specs[1].Name != "beta" || specs[1].Key != "bk" {
		t.Errorf("beta spec = %+v", specs[1])
	}

	// An empty (or all-comment) file is an explicit "auth off", not an
	// error: nil specs, nil error.
	for _, empty := range []string{"", "\n\n", "# only comments\n  # more\n"} {
		specs, err := ParseTenantKeysFile([]byte(empty))
		if err != nil || specs != nil {
			t.Errorf("empty file %q: specs=%v err=%v, want nil/nil", empty, specs, err)
		}
	}

	// Grammar errors surface, same as -tenant-keys.
	if _, err := ParseTenantKeysFile([]byte("acme\n")); err == nil {
		t.Error("keyless entry accepted")
	}
	if _, err := ParseTenantKeysFile([]byte("acme=k:notanumber\n")); err == nil {
		t.Error("malformed quota accepted")
	}
}
