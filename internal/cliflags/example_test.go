package cliflags_test

import (
	"fmt"

	"repro/internal/cliflags"
)

// The -tenant-keys-file grammar is one tenant per line,
// name=key[:max-sessions[:max-store-bytes]], with #-comments and blank
// lines ignored — the same spec syntax as the inline -tenant-keys
// flag, one entry per line instead of comma-separated. raced and
// racedctl re-read the file and swap the live table on SIGHUP, so
// editing it and signalling the process rotates keys without a
// restart. An empty (or all-comment) file parses to nil: an explicit
// "auth off", not an error.
func ExampleParseTenantKeysFile() {
	specs, err := cliflags.ParseTenantKeysFile([]byte(`
# fleet tenants — rotated 2026-08-08
acme=s3cret:100:10485760
dev=hunter2          # no quotas: unlimited sessions and bytes
`))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range specs {
		fmt.Printf("%s sessions=%d bytes=%d\n", t.Name, t.MaxSessions, t.MaxStoreBytes)
	}
	// Output:
	// acme sessions=100 bytes=10485760
	// dev sessions=0 bytes=0
}
