// Package cliflags is the single source of truth for the flag surface
// the wire-protocol binaries (raced, racedctl) share. Both register
// through it, so the shared knobs — -addr, -metrics, -queue-cap,
// -idle-timeout, -drain-timeout, -max-version, -tenant-keys, -v —
// spell, default,
// and document themselves identically in every binary; an operator who
// knows one front-end knows them all.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Default values for the shared flags. raced and racedctl differ only
// in their default listen address (passed to Register), never in these.
const (
	DefaultDrainTimeout = 10 * time.Second
)

// Common holds the parsed values of the flags every wire front-end
// shares.
type Common struct {
	// Addr is the wire-protocol listen address.
	Addr string
	// Metrics is the observability listen address ("" disables).
	Metrics string
	// QueueCap is the per-session buffering capacity, in events
	// (0 = the binary's default). raced sizes each session's engine
	// queue with it; racedctl sizes its per-connection relay buffers
	// from it.
	QueueCap int
	// IdleTimeout evicts sessions (raced) or proxied connections
	// (racedctl) idle this long (0 disables).
	IdleTimeout time.Duration
	// DrainTimeout bounds graceful shutdown before hard close.
	DrainTimeout time.Duration
	// MaxVersion caps the wire protocol version spoken (0 = newest).
	MaxVersion int
	// Verbose enables lifecycle logging.
	Verbose bool
}

// Register installs the shared flag set on fs. defaultAddr is the only
// per-binary degree of freedom (raced and racedctl listen on different
// well-known ports); everything else is identical by construction.
func Register(fs *flag.FlagSet, defaultAddr string, c *Common) {
	fs.StringVar(&c.Addr, "addr", defaultAddr, "session listen address")
	fs.StringVar(&c.Metrics, "metrics", "", "observability listen address for /healthz and /metrics (empty disables)")
	fs.IntVar(&c.QueueCap, "queue-cap", 0, "per-session buffering capacity in events (0 = default; raced: engine queue, racedctl: relay buffers)")
	fs.DurationVar(&c.IdleTimeout, "idle-timeout", 0, "evict sessions idle this long (0 disables)")
	fs.DurationVar(&c.DrainTimeout, "drain-timeout", DefaultDrainTimeout, "graceful shutdown budget before hard close")
	fs.IntVar(&c.MaxVersion, "max-version", 0, "cap the wire protocol version spoken (0 = newest); newer clients are refused and downgrade")
	fs.BoolVar(&c.Verbose, "v", false, "log session lifecycle events")
}

// RegisterTenantKeys installs the shared -tenant-keys flag. raced uses
// it to require and verify tenant credentials; racedctl uses the same
// spelling to refuse bad credentials at the gateway edge before a
// backend connection is spent. ParseTenantKeys decodes the value.
func RegisterTenantKeys(fs *flag.FlagSet, spec *string) {
	fs.StringVar(spec, "tenant-keys", "",
		"require tenant auth: name=key[:maxSessions[:maxStoreBytes]],... (empty = no auth)")
}

// RegisterTenantKeysFile installs the shared -tenant-keys-file flag:
// the -tenant-keys grammar read from a file, so keys stay out of
// process listings and the table can be swapped live — raced and
// racedctl both re-read the file on SIGHUP, and raced's /admin/tenants
// PUT accepts the same format as its request body.
func RegisterTenantKeysFile(fs *flag.FlagSet, path *string) {
	fs.StringVar(path, "tenant-keys-file", "",
		"file of tenant auth entries, one name=key[:maxSessions[:maxStoreBytes]] per line ('#' comments); reloaded on SIGHUP; mutually exclusive with -tenant-keys")
}

// TenantSpec is one parsed -tenant-keys entry. The quota fields are
// zero when the entry omitted them (zero = unlimited); only raced
// enforces quotas, racedctl ignores them and checks credentials alone.
type TenantSpec struct {
	// Name is the tenant identifier clients present as the left half of
	// their "name:key" auth token.
	Name string
	// Key is the shared secret (the right half of the auth token).
	Key string
	// MaxSessions caps the tenant's concurrent live sessions (0 = no cap).
	MaxSessions int
	// MaxStoreBytes caps the tenant's persisted report bytes (0 = no cap).
	MaxStoreBytes int64
}

// ParseTenantKeys decodes a -tenant-keys value: comma-separated
// name=key[:maxSessions[:maxStoreBytes]] entries. Names and keys must
// be non-empty; names must not contain ':' (the auth token separator),
// and keys registered here must not contain ':' or ',' (the flag's own
// separators). An empty spec parses to nil, meaning auth is off.
func ParseTenantKeys(spec string) ([]TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []TenantSpec
	seen := make(map[string]bool)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rest, ok := strings.Cut(item, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("cliflags: -tenant-keys entry %q: want name=key[:maxSessions[:maxStoreBytes]]", item)
		}
		if strings.Contains(name, ":") {
			return nil, fmt.Errorf("cliflags: -tenant-keys tenant %q: name must not contain ':'", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("cliflags: -tenant-keys tenant %q listed twice", name)
		}
		seen[name] = true
		parts := strings.Split(rest, ":")
		t := TenantSpec{Name: name, Key: parts[0]}
		if t.Key == "" {
			return nil, fmt.Errorf("cliflags: -tenant-keys tenant %q: empty key", name)
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("cliflags: -tenant-keys entry %q: too many ':' fields", item)
		}
		if len(parts) >= 2 && parts[1] != "" {
			n, err := strconv.Atoi(parts[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cliflags: -tenant-keys tenant %q: bad maxSessions %q", name, parts[1])
			}
			t.MaxSessions = n
		}
		if len(parts) == 3 && parts[2] != "" {
			n, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cliflags: -tenant-keys tenant %q: bad maxStoreBytes %q", name, parts[2])
			}
			t.MaxStoreBytes = n
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cliflags: -tenant-keys lists no tenants")
	}
	return out, nil
}

// ParseTenantKeysFile decodes the -tenant-keys-file format: the
// -tenant-keys grammar spread over lines — one or more
// name=key[:maxSessions[:maxStoreBytes]] entries per line (commas
// still work within a line), '#' starts a comment, blank lines are
// ignored. A file with no entries parses to nil, meaning auth is off:
// unlike the flag (where an empty value just means "flag unset"), an
// emptied file is an explicit operator statement.
func ParseTenantKeysFile(data []byte) ([]TenantSpec, error) {
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			entries = append(entries, line)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	return ParseTenantKeys(strings.Join(entries, ","))
}
