// Package cliflags is the single source of truth for the flag surface
// the wire-protocol binaries (raced, racedctl) share. Both register
// through it, so the shared knobs — -addr, -metrics, -queue-cap,
// -idle-timeout, -drain-timeout, -max-version, -v — spell, default,
// and document themselves identically in every binary; an operator who
// knows one front-end knows them all.
package cliflags

import (
	"flag"
	"time"
)

// Default values for the shared flags. raced and racedctl differ only
// in their default listen address (passed to Register), never in these.
const (
	DefaultDrainTimeout = 10 * time.Second
)

// Common holds the parsed values of the flags every wire front-end
// shares.
type Common struct {
	// Addr is the wire-protocol listen address.
	Addr string
	// Metrics is the observability listen address ("" disables).
	Metrics string
	// QueueCap is the per-session buffering capacity, in events
	// (0 = the binary's default). raced sizes each session's engine
	// queue with it; racedctl sizes its per-connection relay buffers
	// from it.
	QueueCap int
	// IdleTimeout evicts sessions (raced) or proxied connections
	// (racedctl) idle this long (0 disables).
	IdleTimeout time.Duration
	// DrainTimeout bounds graceful shutdown before hard close.
	DrainTimeout time.Duration
	// MaxVersion caps the wire protocol version spoken (0 = newest).
	MaxVersion int
	// Verbose enables lifecycle logging.
	Verbose bool
}

// Register installs the shared flag set on fs. defaultAddr is the only
// per-binary degree of freedom (raced and racedctl listen on different
// well-known ports); everything else is identical by construction.
func Register(fs *flag.FlagSet, defaultAddr string, c *Common) {
	fs.StringVar(&c.Addr, "addr", defaultAddr, "session listen address")
	fs.StringVar(&c.Metrics, "metrics", "", "observability listen address for /healthz and /metrics (empty disables)")
	fs.IntVar(&c.QueueCap, "queue-cap", 0, "per-session buffering capacity in events (0 = default; raced: engine queue, racedctl: relay buffers)")
	fs.DurationVar(&c.IdleTimeout, "idle-timeout", 0, "evict sessions idle this long (0 disables)")
	fs.DurationVar(&c.DrainTimeout, "drain-timeout", DefaultDrainTimeout, "graceful shutdown budget before hard close")
	fs.IntVar(&c.MaxVersion, "max-version", 0, "cap the wire protocol version spoken (0 = newest); newer clients are refused and downgrade")
	fs.BoolVar(&c.Verbose, "v", false, "log session lifecycle events")
}
