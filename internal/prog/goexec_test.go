package prog

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fj"
	"repro/internal/goinstr"
)

// corpusSources returns the .fj corpus plus the fuzz seed programs.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{
		"seed-figure2":  "fork a { read r }\nread r\nfork c { join a }\nwrite r\njoin c\n",
		"seed-empty":    "fork a { } join a",
		"seed-straight": "read x write y",
		"seed-nested":   "fork a { fork b { write z } join b }",
		"seed-racy":     "fork a { write x } write x join a",
		"seed-deep":     strings.Repeat("fork t { ", 50) + "write x" + strings.Repeat(" }", 50),
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "race2d", "testdata", "*.fj"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(f)] = string(b)
	}
	if len(srcs) < 11 {
		t.Fatalf("corpus incomplete: %d sources", len(srcs))
	}
	return srcs
}

// TestExecGoroutinesCorpusParity: the concurrent goroutine interpreter
// produces the identical trace, address assignment, op count, and
// detector verdict as the serial interpreter on the whole corpus.
func TestExecGoroutinesCorpusParity(t *testing.T) {
	for name, src := range corpusSources(t) {
		p, err := ParseString(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		var want fj.Trace
		wantSink := fj.NewDetectorSink(8)
		wantRes, err := Exec(p, fj.MultiSink{&want, wantSink})
		if err != nil {
			t.Fatalf("%s: serial exec: %v", name, err)
		}
		for round := 0; round < 5; round++ {
			var got fj.Trace
			gotSink := fj.NewDetectorSink(8)
			gotRes, err := ExecGoroutines(p, fj.MultiSink{&got, gotSink}, goinstr.Options{})
			if err != nil {
				t.Fatalf("%s: goroutine exec: %v", name, err)
			}
			if len(got.Events) != len(want.Events) {
				t.Fatalf("%s: trace lengths %d vs %d", name, len(got.Events), len(want.Events))
			}
			for i := range want.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("%s: event %d: %v vs %v", name, i, got.Events[i], want.Events[i])
				}
			}
			if gotRes.Tasks != wantRes.Tasks || gotRes.Ops != wantRes.Ops {
				t.Fatalf("%s: result %+v vs %+v", name, gotRes, wantRes)
			}
			if len(gotRes.Addr) != len(wantRes.Addr) {
				t.Fatalf("%s: addr maps differ", name)
			}
			for n, a := range wantRes.Addr {
				if gotRes.Addr[n] != a {
					t.Fatalf("%s: addr[%q] = %v, want %v", name, n, gotRes.Addr[n], a)
				}
			}
			if gotSink.Racy() != wantSink.Racy() || len(gotSink.Races()) != len(wantSink.Races()) {
				t.Fatalf("%s: verdict diverged", name)
			}
		}
	}
}

// TestExecGoroutinesUnknownJoin mirrors Exec's unknown-name error.
func TestExecGoroutinesUnknownJoin(t *testing.T) {
	p, err := ParseString("join ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecGoroutines(p, nil, goinstr.Options{}); err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err = %v", err)
	}
}

// TestExecContextCancels: a cancelled context aborts the serial
// interpreter mid-program.
func TestExecContextCancels(t *testing.T) {
	p, err := ParseString("repeat 1000000 { read x write x }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, execErr := ExecContext(ctx, p, nil)
	if execErr != context.DeadlineExceeded {
		t.Fatalf("err = %v", execErr)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation was not prompt")
	}
}
