package prog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("prog: line %d: %s", e.Line, e.Msg)
}

type token struct {
	text string
	line int
}

// Parse reads a program in the package's textual syntax. Statements are
// whitespace-separated tokens; fork bodies may span lines or sit inline
// ("fork a { read r }"). '#' comments run to end of line.
func Parse(r io.Reader) (*Program, error) {
	var tokens []token
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, f := range strings.Fields(line) {
			tokens = append(tokens, token{text: f, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prog: %w", err)
	}

	type frame struct {
		body   []Stmt
		name   string
		count  int
		repeat bool
		spawn  bool
		line   int
	}
	stack := []frame{{}}
	pos := 0
	fail := func(line int, msg string, args ...any) (*Program, error) {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf(msg, args...)}
	}
	next := func() (token, bool) {
		if pos < len(tokens) {
			t := tokens[pos]
			pos++
			return t, true
		}
		return token{line: lineNo}, false
	}
	for {
		tok, ok := next()
		if !ok {
			break
		}
		switch tok.text {
		case "fork", "spawn":
			name, ok1 := next()
			brace, ok2 := next()
			if !ok1 || !ok2 || brace.text != "{" {
				return fail(tok.line, "expected '%s NAME {'", tok.text)
			}
			if !validName(name.text) {
				return fail(name.line, "invalid task name %q", name.text)
			}
			stack = append(stack, frame{name: name.text, spawn: tok.text == "spawn", line: tok.line})
		case "repeat":
			count, ok1 := next()
			brace, ok2 := next()
			if !ok1 || !ok2 || brace.text != "{" {
				return fail(tok.line, "expected 'repeat COUNT {'")
			}
			n, err := strconv.Atoi(count.text)
			if err != nil || n < 0 {
				return fail(count.line, "invalid repeat count %q", count.text)
			}
			stack = append(stack, frame{repeat: true, count: n, line: tok.line})
		case "}":
			if len(stack) == 1 {
				return fail(tok.line, "unmatched '}'")
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parent := &stack[len(stack)-1]
			switch {
			case top.repeat:
				parent.body = append(parent.body, Stmt{Op: OpRepeat, Count: top.count, Body: top.body, Line: top.line})
			case top.spawn:
				parent.body = append(parent.body, Stmt{Op: OpSpawn, Name: top.name, Body: top.body, Line: top.line})
			default:
				parent.body = append(parent.body, Stmt{Op: OpFork, Name: top.name, Body: top.body, Line: top.line})
			}
		case "join":
			name, ok := next()
			if !ok {
				return fail(tok.line, "expected 'join NAME'")
			}
			if !validName(name.text) {
				return fail(name.line, "invalid task name %q", name.text)
			}
			top := &stack[len(stack)-1]
			top.body = append(top.body, Stmt{Op: OpJoin, Name: name.text, Line: tok.line})
		case "sync":
			top := &stack[len(stack)-1]
			top.body = append(top.body, Stmt{Op: OpSync, Line: tok.line})
		case "joinleft":
			top := &stack[len(stack)-1]
			top.body = append(top.body, Stmt{Op: OpJoinLeft, Line: tok.line})
		case "read", "write":
			name, ok := next()
			if !ok {
				return fail(tok.line, "expected '%s LOC'", tok.text)
			}
			if !validName(name.text) {
				return fail(name.line, "invalid location %q", name.text)
			}
			op := OpRead
			if tok.text == "write" {
				op = OpWrite
			}
			top := &stack[len(stack)-1]
			top.body = append(top.body, Stmt{Op: op, Name: name.text, Line: tok.line})
		default:
			return fail(tok.line, "unknown statement %q", tok.text)
		}
	}
	if len(stack) != 1 {
		return fail(stack[len(stack)-1].line, "unclosed fork block")
	}
	return &Program{Body: stack[0].body}, nil
}

// ParseString parses a program from a string.
func ParseString(s string) (*Program, error) {
	return Parse(strings.NewReader(s))
}

func validName(s string) bool {
	if s == "" || s == "{" || s == "}" {
		return false
	}
	for _, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
