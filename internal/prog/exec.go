package prog

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fj"
)

// Result summarizes an execution.
type Result struct {
	// Tasks is the number of tasks created (including the root).
	Tasks int
	// Ops is the number of memory operations executed.
	Ops int
	// Addr maps location names to the addresses they were assigned.
	Addr map[string]core.Addr
}

// LocName returns the name bound to addr, or a hex rendering.
func (r *Result) LocName(addr core.Addr) string {
	for name, a := range r.Addr {
		if a == addr {
			return name
		}
	}
	return fmt.Sprintf("%#x", uint64(addr))
}

// Locations lists the program's location names, ascending by address.
func (r *Result) Locations() []string {
	names := make([]string, 0, len(r.Addr))
	for n := range r.Addr {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return r.Addr[names[i]] < r.Addr[names[j]] })
	return names
}

// Exec interprets the program serially, fork-first, streaming events to
// sink. The interpreter maintains an explicit frame stack — no Go-stack
// recursion — so arbitrarily deep task structures execute safely.
//
// Task names bind globally, most recent fork wins; joining a name that was
// never forked is an error. Location names map to consecutive addresses
// starting at 1, in order of first occurrence.
func Exec(p *Program, sink fj.Sink) (*Result, error) {
	return ExecContext(context.Background(), p, sink)
}

// ExecContext is Exec with cancellation: once ctx is done the
// interpreter stops (checking every few statements) and returns
// ctx.Err() along with the Result for the prefix it executed.
func ExecContext(ctx context.Context, p *Program, sink fj.Sink) (*Result, error) {
	l := fj.NewLine(sink)
	var steps uint
	res := &Result{Addr: map[string]core.Addr{}}
	locOf := func(name string) core.Addr {
		if a, ok := res.Addr[name]; ok {
			return a
		}
		a := core.Addr(len(res.Addr) + 1)
		res.Addr[name] = a
		return a
	}

	type frame struct {
		task     fj.ID
		body     []Stmt
		pc       int
		repeats  int     // > 0: re-run body this many more times before popping
		isTask   bool    // pop emits a halt for task frames only
		children []fj.ID // spawned, not yet synced (task frames only)
	}
	stack := []frame{{task: 0, body: p.Body, isTask: true}}
	names := map[string]fj.ID{}

	// taskFrame returns the innermost task frame (skipping repeat frames).
	taskFrame := func(stack []frame) *frame {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].isTask {
				return &stack[i]
			}
		}
		return &stack[0]
	}
	// syncChildren joins f's spawned children newest-first.
	syncChildren := func(l *fj.Line, f *frame) error {
		for i := len(f.children) - 1; i >= 0; i-- {
			if err := l.Join(f.task, f.children[i]); err != nil {
				return err
			}
		}
		f.children = f.children[:0]
		return nil
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.pc == len(f.body) {
			if f.repeats > 0 {
				f.repeats--
				f.pc = 0
				continue
			}
			if f.isTask {
				// Implicit sync at task end (Cilk semantics for spawn).
				if err := syncChildren(l, f); err != nil {
					return res, err
				}
				if f.task != 0 {
					if err := l.Halt(f.task); err != nil {
						return res, err
					}
				}
			}
			stack = stack[:len(stack)-1]
			continue
		}
		st := f.body[f.pc]
		f.pc++
		if steps++; steps&63 == 0 {
			if err := ctx.Err(); err != nil {
				res.Tasks = l.Tasks()
				return res, err
			}
		}
		switch st.Op {
		case OpFork:
			child, err := l.Fork(f.task)
			if err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
			names[st.Name] = child
			stack = append(stack, frame{task: child, body: st.Body, isTask: true})
		case OpJoin:
			id, ok := names[st.Name]
			if !ok {
				return res, fmt.Errorf("prog: line %d: join of unknown task %q", st.Line, st.Name)
			}
			if err := l.Join(f.task, id); err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
		case OpSpawn:
			child, err := l.Fork(f.task)
			if err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
			names[st.Name] = child
			taskFrame(stack).children = append(taskFrame(stack).children, child)
			stack = append(stack, frame{task: child, body: st.Body, isTask: true})
		case OpSync:
			if err := syncChildren(l, taskFrame(stack)); err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
		case OpRepeat:
			if st.Count > 0 {
				stack = append(stack, frame{task: f.task, body: st.Body, repeats: st.Count - 1})
			}
		case OpJoinLeft:
			if y := l.LeftNeighbor(f.task); y >= 0 {
				if err := l.Join(f.task, y); err != nil {
					return res, fmt.Errorf("line %d: %w", st.Line, err)
				}
			}
		case OpRead:
			if err := l.Read(f.task, locOf(st.Name)); err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
			res.Ops++
		case OpWrite:
			if err := l.Write(f.task, locOf(st.Name)); err != nil {
				return res, fmt.Errorf("line %d: %w", st.Line, err)
			}
			res.Ops++
		}
	}
	// Join any remaining tasks so the task graph has a single sink.
	for {
		y := l.LeftNeighbor(0)
		if y < 0 {
			break
		}
		if err := l.Join(0, y); err != nil {
			return res, err
		}
	}
	if err := l.Halt(0); err != nil {
		return res, err
	}
	res.Tasks = l.Tasks()
	return res, nil
}
