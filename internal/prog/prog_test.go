package prog

import (
	"strings"
	"testing"

	"repro/internal/baseline/bruteforce"
	"repro/internal/core"
	"repro/internal/fj"
)

const figure2Src = `
# The program of the paper's Figure 2.
fork a { read r }   # A
read r              # B
fork c {
    join a          # C
}
write r             # D
join c
`

func TestParseFigure2(t *testing.T) {
	p, err := ParseString(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Forks != 2 || s.Joins != 2 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDepth != 1 {
		t.Fatalf("depth = %d", s.MaxDepth)
	}
	if len(s.Locations) != 1 || s.Locations[0] != "r" {
		t.Fatalf("locations = %v", s.Locations)
	}
}

func TestExecFigure2DetectsRace(t *testing.T) {
	p, err := ParseString(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(4)
	res, err := Exec(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3 || res.Ops != 3 {
		t.Fatalf("result = %+v", res)
	}
	if !ds.Racy() {
		t.Fatal("race not detected")
	}
	if res.LocName(ds.Races()[0].Loc) != "r" {
		t.Fatalf("race on %v", ds.Races()[0])
	}
}

func TestRoundTripString(t *testing.T) {
	p, err := ParseString(figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseString(p.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, p.String())
	}
	if p.String() != p2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"fork {":             "expected 'fork NAME {'",
		"fork a {\nread x":   "unclosed fork",
		"}":                  "unmatched '}'",
		"join":               "expected 'join NAME'",
		"joinleft now":       "unknown statement",
		"read":               "expected 'read LOC'",
		"frobnicate x":       "unknown statement",
		"read x stray":       "unknown statement",
		"write bad-name":     "invalid location",
		"fork bad*name {\n}": "invalid task name",
		"join {":             "invalid task name",
	}
	for src, wantSub := range cases {
		_, err := ParseString(src)
		if err == nil {
			t.Errorf("no error for %q", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error for %q = %q, want substring %q", src, err, wantSub)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("read x\nbogus y\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Fatalf("err = %v", err)
	}
}

func TestExecJoinUnknownTask(t *testing.T) {
	p, _ := ParseString("join ghost")
	if _, err := Exec(p, nil); err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecDisciplineViolation(t *testing.T) {
	p, _ := ParseString(`
fork a { }
fork b { }
join a
`)
	_, err := Exec(p, nil)
	if err == nil || !strings.Contains(err.Error(), "immediate left neighbor") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinLeftNoNeighborIsNoop(t *testing.T) {
	p, _ := ParseString("joinleft\nread x")
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1 {
		t.Fatal("ops wrong")
	}
}

func TestDeepProgramIterative(t *testing.T) {
	// 50k nested forks: would overflow any recursive interpreter's
	// practical budget per frame; the explicit stack handles it.
	var b strings.Builder
	const depth = 50000
	for i := 0; i < depth; i++ {
		b.WriteString("fork t {\n")
	}
	b.WriteString("write x\n")
	for i := 0; i < depth; i++ {
		b.WriteString("}\n")
	}
	p, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != depth+1 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
}

func TestExecMatchesGroundTruth(t *testing.T) {
	src := `
fork w1 { write s }
fork w2 { write s }
joinleft
joinleft
read s
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var tr fj.Trace
	ds := fj.NewDetectorSink(4)
	if _, err := Exec(p, fj.MultiSink{&tr, ds}); err != nil {
		t.Fatal(err)
	}
	rep := bruteforce.Analyze(&tr)
	if !rep.Racy() || !ds.Racy() {
		t.Fatal("write-write race between w1 and w2 missed")
	}
}

func TestLocNamesAndAddresses(t *testing.T) {
	p, _ := ParseString("read a\nread b\nwrite a")
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addr["a"] != 1 || res.Addr["b"] != 2 {
		t.Fatalf("addr map = %v", res.Addr)
	}
	if got := res.Locations(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("locations = %v", got)
	}
	if res.LocName(2) != "b" || res.LocName(99) != "0x63" {
		t.Fatal("LocName wrong")
	}
}

func TestRepeatBasic(t *testing.T) {
	p, err := ParseString("repeat 5 { write x read x }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 10 {
		t.Fatalf("ops = %d, want 10", res.Ops)
	}
}

func TestRepeatWithForks(t *testing.T) {
	// Each iteration forks a worker and joins it: a chain of diamonds.
	p, err := ParseString(`
repeat 4 {
    fork w { write s }
    join w
    read s
}`)
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(8)
	res, err := Exec(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 5 {
		t.Fatalf("tasks = %d, want 5", res.Tasks)
	}
	if ds.Racy() {
		t.Fatalf("joined repeats flagged: %v", ds.D.Races())
	}
}

func TestRepeatRacyFanout(t *testing.T) {
	// Unjoined workers from every iteration race on the shared location.
	p, err := ParseString("repeat 3 { fork w { write s } }\nread s")
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(8)
	if _, err := Exec(p, ds); err != nil {
		t.Fatal(err)
	}
	if !ds.Racy() {
		t.Fatal("fanout race missed")
	}
}

func TestRepeatZeroAndRoundTrip(t *testing.T) {
	p, err := ParseString("repeat 0 { write x }\nread y")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1 {
		t.Fatalf("ops = %d", res.Ops)
	}
	p2, err := ParseString(p.String())
	if err != nil || p.String() != p2.String() {
		t.Fatalf("round trip failed: %v\n%s", err, p.String())
	}
}

func TestRepeatParseErrors(t *testing.T) {
	for src, want := range map[string]string{
		"repeat { write x }":    "expected 'repeat COUNT {'",
		"repeat -1 { write x }": "invalid repeat count",
		"repeat 2 write x":      "expected 'repeat COUNT {'",
		"repeat 2 { write x":    "unclosed fork",
	} {
		_, err := ParseString(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: err = %v, want %q", src, err, want)
		}
	}
}

func TestRepeatLargeIsCheap(t *testing.T) {
	// 100k iterations: the interpreter loops instead of expanding the AST.
	p, err := ParseString("repeat 100000 { write x }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100000 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestSpawnSyncBasics(t *testing.T) {
	src := `
spawn a { write s }
spawn b { write s }
sync
read s
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(4)
	res, err := Exec(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	// a and b race with each other (write-write), but the final read is
	// synced.
	if !ds.Racy() {
		t.Fatal("sibling spawn race missed")
	}
	for _, r := range ds.Races() {
		if r.Kind == core.WriteRead {
			t.Fatalf("synced read flagged: %v", r)
		}
	}
}

func TestImplicitSyncAtTaskEnd(t *testing.T) {
	src := `
spawn outer {
    spawn inner { write g }
}
sync
write g
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(4)
	if _, err := Exec(p, ds); err != nil {
		t.Fatal(err)
	}
	if ds.Racy() {
		t.Fatalf("implicit sync failed: %v", ds.D.Races())
	}
}

func TestSyncWithoutSpawnIsNoop(t *testing.T) {
	p, err := ParseString("sync\nread x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(p, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnInsideRepeat(t *testing.T) {
	src := `
repeat 3 {
    spawn w { write s }
    sync
    read s
}
`
	p, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := fj.NewDetectorSink(8)
	res, err := Exec(p, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 4 {
		t.Fatalf("tasks = %d", res.Tasks)
	}
	if ds.Racy() {
		t.Fatalf("per-iteration sync failed: %v", ds.D.Races())
	}
}

func TestSpawnRoundTrip(t *testing.T) {
	p, err := ParseString("spawn a { write x }\nsync")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseString(p.String())
	if err != nil || p.String() != p2.String() {
		t.Fatalf("round trip: %v\n%s", err, p.String())
	}
	s := p.Stats()
	if s.Forks != 1 || s.Joins != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
