// Package prog defines a small textual language for structured fork-join
// programs, with a parser and an iterative interpreter. It exists so that
// the CLI tools can run programs from files, tests can fuzz the detector
// with serialized inputs, and deep task structures can execute without
// consuming Go stack (the interpreter keeps an explicit frame stack and
// drives the fj.Line discipline directly).
//
// Syntax (one statement per line; '#' starts a comment):
//
//	fork NAME {        # activate a task; the block is its body
//	    read LOC
//	    write LOC
//	}
//	join NAME          # join the task forked under NAME
//	joinleft           # join the current immediate left neighbor
//	read LOC           # LOC: identifier or integer, mapped to an address
//	write LOC
//
// The program of the paper's Figure 2:
//
//	fork a { read r }
//	read r
//	fork c { join a }
//	write r
//	join c
package prog

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates statement kinds.
type Op uint8

const (
	// OpFork forks a named task with a body.
	OpFork Op = iota
	// OpJoin joins a named task.
	OpJoin
	// OpJoinLeft joins the immediate left neighbor.
	OpJoinLeft
	// OpRead reads a location.
	OpRead
	// OpWrite writes a location.
	OpWrite
	// OpRepeat executes its body Count times.
	OpRepeat
	// OpSpawn forks a Cilk-style child registered with the enclosing
	// task's sync set; the task has an implicit sync at its end.
	OpSpawn
	// OpSync joins every spawned child of the enclosing task.
	OpSync
)

// Stmt is one statement. Body is non-nil only for OpFork and OpRepeat.
type Stmt struct {
	Op    Op
	Name  string // task name (fork/join) or location name (read/write)
	Count int    // repetitions for OpRepeat
	Body  []Stmt
	Line  int // source line, for error messages
}

// Program is a parsed program.
type Program struct {
	Body []Stmt
}

// Stats summarizes a program's static shape.
type Stats struct {
	Forks, Joins, Reads, Writes int
	MaxDepth                    int
	Locations                   []string
}

// Stats walks the AST and reports its shape.
func (p *Program) Stats() Stats {
	var s Stats
	locs := map[string]bool{}
	var walk func(body []Stmt, depth int)
	walk = func(body []Stmt, depth int) {
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		for _, st := range body {
			switch st.Op {
			case OpFork, OpSpawn:
				s.Forks++
				walk(st.Body, depth+1)
			case OpRepeat:
				walk(st.Body, depth)
			case OpJoin, OpJoinLeft, OpSync:
				s.Joins++
			case OpRead:
				s.Reads++
				locs[st.Name] = true
			case OpWrite:
				s.Writes++
				locs[st.Name] = true
			}
		}
	}
	walk(p.Body, 0)
	for l := range locs {
		s.Locations = append(s.Locations, l)
	}
	sort.Strings(s.Locations)
	return s
}

// String renders the program back to its textual form.
func (p *Program) String() string {
	var b strings.Builder
	var walk func(body []Stmt, indent string)
	walk = func(body []Stmt, indent string) {
		for _, st := range body {
			switch st.Op {
			case OpFork:
				fmt.Fprintf(&b, "%sfork %s {\n", indent, st.Name)
				walk(st.Body, indent+"    ")
				fmt.Fprintf(&b, "%s}\n", indent)
			case OpRepeat:
				fmt.Fprintf(&b, "%srepeat %d {\n", indent, st.Count)
				walk(st.Body, indent+"    ")
				fmt.Fprintf(&b, "%s}\n", indent)
			case OpSpawn:
				fmt.Fprintf(&b, "%sspawn %s {\n", indent, st.Name)
				walk(st.Body, indent+"    ")
				fmt.Fprintf(&b, "%s}\n", indent)
			case OpSync:
				fmt.Fprintf(&b, "%ssync\n", indent)
			case OpJoin:
				fmt.Fprintf(&b, "%sjoin %s\n", indent, st.Name)
			case OpJoinLeft:
				fmt.Fprintf(&b, "%sjoinleft\n", indent)
			case OpRead:
				fmt.Fprintf(&b, "%sread %s\n", indent, st.Name)
			case OpWrite:
				fmt.Fprintf(&b, "%swrite %s\n", indent, st.Name)
			}
		}
	}
	walk(p.Body, "")
	return b.String()
}
