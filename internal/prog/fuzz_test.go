package prog

import (
	"strings"
	"testing"

	"repro/internal/fj"
)

// FuzzParse checks the parser never panics, and that accepted programs
// round-trip through String and execute (or fail) cleanly. Run the seeds
// with `go test`; explore with `go test -fuzz=FuzzParse ./internal/prog`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"fork a { read r }\nread r\nfork c { join a }\nwrite r\njoin c\n",
		"fork a { } join a",
		"joinleft",
		"read x write y",
		"fork a { fork b { write z } join b }",
		"# comment only",
		"fork { }",
		"}{",
		"fork a { read r",
		strings.Repeat("fork t { ", 50) + "write x" + strings.Repeat(" }", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseString(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		// Accepted programs must round-trip.
		again, err := ParseString(p.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", p.String(), err)
		}
		if p.String() != again.String() {
			t.Fatalf("unstable round trip:\n%s\nvs\n%s", p.String(), again.String())
		}
		// Execution either succeeds or reports a structured error; the
		// emitted trace must validate.
		var tr fj.Trace
		if _, err := Exec(p, &tr); err != nil {
			return
		}
		if err := fj.ValidateTrace(&tr); err != nil {
			t.Fatalf("interpreter emitted invalid trace: %v", err)
		}
	})
}
