package prog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/goinstr"
)

// ExecGoroutines interprets the program on the goroutine frontend: each
// forked or spawned task runs its statement list on its own goroutine
// through goinstr's concurrent ingestion pipeline, so the same textual
// programs that drive the serial interpreter exercise true concurrency.
// The merged event stream — and therefore the detector verdict — is
// identical to Exec's.
//
// Location addresses are assigned by a static walk in first-occurrence
// order, which coincides with Exec's dynamic assignment order (the
// serial schedule executes statements in program order). Task names
// still bind globally, most recent fork wins; programs that rebind a
// name from concurrently-running tasks are outside the deterministic
// fragment (the corpus and fuzz seeds bind each name from one task at a
// time).
func ExecGoroutines(p *Program, sink fj.Sink, opt goinstr.Options) (*Result, error) {
	res := &Result{Addr: map[string]core.Addr{}}
	assignAddrs(p.Body, res.Addr)

	var (
		ops     atomic.Int64
		nameMu  sync.Mutex
		names   = map[string]goinstr.Handle{}
		errMu   sync.Mutex
		execErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if execErr == nil {
			execErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return execErr != nil
	}

	// run interprets one task's statement list; children collects
	// spawned-but-unsynced handles for sync and the implicit task-end
	// sync.
	var run func(t *goinstr.Task, body []Stmt, children *[]goinstr.Handle)
	syncChildren := func(t *goinstr.Task, children *[]goinstr.Handle) {
		for i := len(*children) - 1; i >= 0; i-- {
			t.Join((*children)[i])
		}
		*children = (*children)[:0]
	}
	run = func(t *goinstr.Task, body []Stmt, children *[]goinstr.Handle) {
		for _, st := range body {
			if failed() {
				return
			}
			switch st.Op {
			case OpFork:
				st := st
				h := t.Go(func(ct *goinstr.Task) {
					var ch []goinstr.Handle
					run(ct, st.Body, &ch)
					syncChildren(ct, &ch)
				})
				nameMu.Lock()
				names[st.Name] = h
				nameMu.Unlock()
			case OpSpawn:
				st := st
				h := t.Go(func(ct *goinstr.Task) {
					var ch []goinstr.Handle
					run(ct, st.Body, &ch)
					syncChildren(ct, &ch)
				})
				nameMu.Lock()
				names[st.Name] = h
				nameMu.Unlock()
				*children = append(*children, h)
			case OpJoin:
				nameMu.Lock()
				h, ok := names[st.Name]
				nameMu.Unlock()
				if !ok {
					fail(fmt.Errorf("prog: line %d: join of unknown task %q", st.Line, st.Name))
					return
				}
				t.Join(h)
			case OpSync:
				syncChildren(t, children)
			case OpRepeat:
				for i := 0; i < st.Count; i++ {
					run(t, st.Body, children)
				}
			case OpJoinLeft:
				t.JoinLeft()
			case OpRead:
				t.Read(res.Addr[st.Name])
				ops.Add(1)
			case OpWrite:
				t.Write(res.Addr[st.Name])
				ops.Add(1)
			}
		}
	}

	result, err := goinstr.RunPipeline(func(t *goinstr.Task) {
		var ch []goinstr.Handle
		run(t, p.Body, &ch)
		syncChildren(t, &ch)
		// goinstr's runtime joins any remaining left neighbors and halts
		// the root, mirroring Exec's trailing auto-join.
	}, sink, opt)
	res.Tasks = result.Tasks
	res.Ops = int(ops.Load())
	if e := func() error { errMu.Lock(); defer errMu.Unlock(); return execErr }(); e != nil {
		return res, e
	}
	return res, err
}

// assignAddrs maps location names to consecutive addresses starting at
// 1 in first-occurrence program order — the order Exec assigns them
// dynamically.
func assignAddrs(body []Stmt, addr map[string]core.Addr) {
	for _, st := range body {
		switch st.Op {
		case OpRead, OpWrite:
			if _, ok := addr[st.Name]; !ok {
				addr[st.Name] = core.Addr(len(addr) + 1)
			}
		case OpFork, OpSpawn, OpRepeat:
			assignAddrs(st.Body, addr)
		}
	}
}
