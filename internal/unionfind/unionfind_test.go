package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

func TestSingletons(t *testing.T) {
	f := New(5)
	for i := 0; i < 5; i++ {
		if f.Find(i) != i {
			t.Fatalf("Find(%d) = %d in fresh forest", i, f.Find(i))
		}
	}
	if f.Len() != 5 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestUnionKeepsFirstArgumentLabel(t *testing.T) {
	// Walk requires Union(t, s) to label the merged set with t's label,
	// regardless of rank-based physical rooting.
	f := New(4)
	f.Union(1, 0) // {0,1} named 1
	if f.Find(0) != 1 || f.Find(1) != 1 {
		t.Fatalf("label after Union(1,0): Find(0)=%d Find(1)=%d", f.Find(0), f.Find(1))
	}
	// Merge a taller tree into a singleton: physical root will be the tall
	// tree's root, but the label must be the singleton's.
	f.Union(2, 1) // {0,1,2} named 2: tree {0,1} is rank 1, {2} is rank 0
	if f.Find(0) != 2 || f.Find(1) != 2 || f.Find(2) != 2 {
		t.Fatalf("label after Union(2,1): %d %d %d", f.Find(0), f.Find(1), f.Find(2))
	}
	f.Union(3, 0)
	if f.Find(2) != 3 {
		t.Fatalf("label after Union(3,0) via member: Find(2)=%d", f.Find(2))
	}
}

func TestUnionSameSetNoop(t *testing.T) {
	f := New(3)
	f.Union(1, 0)
	f.Union(1, 0)
	f.Union(0, 1) // same set: must stay named 1? No — no-op, so name unchanged.
	if f.Find(0) != 1 {
		t.Fatalf("self-union changed label: %d", f.Find(0))
	}
}

func TestSameSet(t *testing.T) {
	f := New(4)
	f.Union(0, 1)
	if !f.SameSet(0, 1) || f.SameSet(0, 2) {
		t.Fatal("SameSet wrong")
	}
}

func TestGrowAndAdd(t *testing.T) {
	f := New(2)
	f.Union(1, 0)
	idx := f.Add()
	if idx != 2 {
		t.Fatalf("Add returned %d", idx)
	}
	if f.Find(2) != 2 {
		t.Fatal("new element not a singleton")
	}
	if f.Find(0) != 1 {
		t.Fatal("Grow disturbed existing set")
	}
	f.Grow(10)
	if f.Len() != 10 || f.Find(9) != 9 {
		t.Fatal("Grow wrong")
	}
}

func TestRelabel(t *testing.T) {
	f := New(3)
	f.Union(0, 1)
	f.Relabel(1, 7) // label value need not be an element index
	if f.Find(0) != 7 || f.Find(1) != 7 {
		t.Fatal("Relabel did not apply to whole set")
	}
}

func TestStats(t *testing.T) {
	f := New(3)
	f.ResetStats()
	f.Find(0)
	f.Union(0, 1)
	s := f.Stats()
	if s.Finds != 1 || s.Unions != 1 {
		t.Fatalf("stats = %d, %d", s.Finds, s.Unions)
	}
	f.ResetStats()
	if s := f.Stats(); s.Finds != 0 || s.Unions != 0 || s.PathSteps != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestStatsPathSteps(t *testing.T) {
	// Build a chain by always unioning into the higher-rank side, then
	// Find from the deep end: halving must record its parent rewrites.
	f := New(64)
	for i := 1; i < 64; i++ {
		f.Union(0, i)
	}
	f.ResetStats()
	for i := 0; i < 64; i++ {
		f.Find(i)
	}
	s := f.Stats()
	if s.Finds != 64 {
		t.Fatalf("finds = %d, want 64", s.Finds)
	}
	// Rank-2 trees exist after the unions, so at least one find walks.
	if s.PathSteps == 0 {
		t.Fatal("path steps not counted")
	}
	if err := obs.CheckAccounting(obs.Stats{SupQueries: s.Finds, Finds: s.Finds,
		Unions: s.Unions, PathSteps: s.PathSteps}, 64); err != nil {
		t.Fatalf("accounting violated on a plain union-find run: %v", err)
	}
}

func TestMemoryBytesLinear(t *testing.T) {
	small, large := New(100).MemoryBytes(), New(1000).MemoryBytes()
	if large <= small || large != 10*small {
		t.Fatalf("memory accounting not linear: %d vs %d", small, large)
	}
}

// naive is an obviously-correct disjoint-set implementation used as the
// property-test oracle: set membership via map to label.
type naive struct {
	label map[int]int
}

func newNaive(n int) *naive {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return &naive{label: m}
}

func (nv *naive) find(x int) int { return nv.label[x] }

func (nv *naive) union(t, s int) {
	lt, ls := nv.label[t], nv.label[s]
	if lt == ls {
		return
	}
	for k, v := range nv.label {
		if v == ls {
			nv.label[k] = lt
		}
	}
}

func TestAgainstNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		fast, slow := New(n), newNaive(n)
		for op := 0; op < 200; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				fast.Union(x, y)
				slow.union(x, y)
			} else if fast.Find(x) != slow.find(x) {
				return false
			}
		}
		for x := 0; x < n; x++ {
			if fast.Find(x) != slow.find(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := New(n)
		for v := 1; v < n; v++ {
			f.Union(v, v-1)
		}
		for v := 0; v < n; v++ {
			if f.Find(v) != n-1 {
				b.Fatal("wrong label")
			}
		}
	}
}
