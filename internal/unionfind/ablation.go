package unionfind

// Ablation is a configurable union-find used to quantify how much each of
// Tarjan's two optimizations contributes to the Θ(α) bound the paper's
// Theorems 3 and 5 rely on. Disabling both degrades Find to the Θ(n)
// worst case; the benchmark suite measures all four combinations.
//
// The production structure is Forest; Ablation trades a branch per
// operation for configurability and exists for experiments only.
type Ablation struct {
	// PathCompression enables path halving in Find.
	PathCompression bool
	// UnionByRank enables rank-based physical rooting in Union.
	UnionByRank bool

	parent []int32
	rank   []uint8
	name   []int32
}

// NewAblation returns a forest over n singletons with the given
// optimizations enabled.
func NewAblation(n int, pathCompression, unionByRank bool) *Ablation {
	a := &Ablation{PathCompression: pathCompression, UnionByRank: unionByRank}
	a.parent = make([]int32, n)
	a.rank = make([]uint8, n)
	a.name = make([]int32, n)
	for i := range a.parent {
		a.parent[i] = int32(i)
		a.name[i] = int32(i)
	}
	return a
}

func (a *Ablation) findRoot(x int) int32 {
	i := int32(x)
	if a.PathCompression {
		for a.parent[i] != i {
			a.parent[i] = a.parent[a.parent[i]]
			i = a.parent[i]
		}
		return i
	}
	for a.parent[i] != i {
		i = a.parent[i]
	}
	return i
}

// Find returns the logical label of x's set.
func (a *Ablation) Find(x int) int { return int(a.name[a.findRoot(x)]) }

// Union merges s's set into t's set, keeping t's label (Walk semantics).
func (a *Ablation) Union(t, s int) {
	rt, rs := a.findRoot(t), a.findRoot(s)
	if rt == rs {
		return
	}
	label := a.name[rt]
	if a.UnionByRank {
		if a.rank[rt] < a.rank[rs] {
			rt, rs = rs, rt
		}
		if a.rank[rt] == a.rank[rs] {
			a.rank[rt]++
		}
	}
	a.parent[rs] = rt
	a.name[rt] = label
}
