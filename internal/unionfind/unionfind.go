// Package unionfind implements the disjoint-set data structure required by
// the paper's Walk routine (Figure 5): union by rank with path compression,
// plus *named roots*.
//
// Walk's Union(t, s) must merge the set containing s into the set containing
// t "under the label of the set containing t". A rank-based union may make
// either physical tree root the new root, so the logical label is stored
// separately: every physical root carries the name of the lattice vertex
// (or thread) that labels its set. Find returns the logical name, keeping
// the inverse-Ackermann bound of Tarjan's analysis (references [19, 20]).
package unionfind

import "repro/internal/obs"

// Forest is a union-find structure over dense integer elements with named
// set labels. The zero value is empty; Grow (or New) adds elements.
type Forest struct {
	parent []int32
	rank   []uint8
	name   []int32 // name[r] = logical label of the set whose physical root is r

	// Operation counters (plain uint64s: the structure is serial), the
	// live form of the Theorem 3/5 accounting — finds and unions count
	// the operations the theorems bound, pathSteps counts the parent
	// rewrites path halving performs while answering them.
	finds     uint64
	unions    uint64
	pathSteps uint64
}

// New returns a forest over n singleton sets, each labeled by itself.
func New(n int) *Forest {
	f := &Forest{}
	f.Grow(n)
	return f
}

// Len returns the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// Grow appends fresh singleton elements until the forest has n elements.
// Existing sets are unaffected. Each array grows with a single
// capacity-doubling extension rather than element-at-a-time appends, so
// growing to n costs O(n) amortized with at most O(log n) allocations.
func (f *Forest) Grow(n int) {
	old := len(f.parent)
	if n <= old {
		return
	}
	f.parent = growInt32(f.parent, n)
	f.rank = growUint8(f.rank, n)
	f.name = growInt32(f.name, n)
	for i := old; i < n; i++ {
		f.parent[i] = int32(i)
		f.name[i] = int32(i)
	}
}

// growInt32 extends s to length n (zero-filled), doubling capacity when
// a reallocation is needed.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]int32, n, c)
	copy(ns, s)
	return ns
}

// growUint8 is growInt32 for byte-sized elements.
func growUint8(s []uint8, n int) []uint8 {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]uint8, n, c)
	copy(ns, s)
	return ns
}

// Add appends one fresh singleton element and returns its index.
func (f *Forest) Add() int {
	f.Grow(len(f.parent) + 1)
	return len(f.parent) - 1
}

// findRoot returns the physical root of x with path halving.
func (f *Forest) findRoot(x int) int32 {
	p := f.parent
	i := int32(x)
	steps := uint64(0)
	for p[i] != i {
		p[i] = p[p[i]] // path halving
		i = p[i]
		steps++
	}
	f.pathSteps += steps
	return i
}

// Find returns the logical label of the set containing x: the vertex that
// currently names the tree, as required by Sup (Figures 5 and 8).
func (f *Forest) Find(x int) int {
	f.finds++
	return int(f.name[f.findRoot(x)])
}

// SameSet reports whether x and y are currently in the same set.
func (f *Forest) SameSet(x, y int) bool {
	return f.findRoot(x) == f.findRoot(y)
}

// Union merges the set containing s into the set containing t, labeling the
// result with t's current label (Walk line 6: Union(t, s)). It is a no-op if
// the two are already in one set.
func (f *Forest) Union(t, s int) {
	f.unions++
	rt, rs := f.findRoot(t), f.findRoot(s)
	if rt == rs {
		return
	}
	label := f.name[rt]
	// Union by rank on physical trees.
	if f.rank[rt] < f.rank[rs] {
		rt, rs = rs, rt
	}
	f.parent[rs] = rt
	if f.rank[rt] == f.rank[rs] {
		f.rank[rt]++
	}
	f.name[rt] = label
}

// Relabel sets the logical label of x's set. The suprema algorithm does not
// need it, but frontends use it to rename bookkeeping sets.
func (f *Forest) Relabel(x, label int) {
	f.name[f.findRoot(x)] = int32(label)
}

// Stats returns the operation counters executed so far: Finds, Unions
// and PathSteps (Theorem 3's accounting, live).
func (f *Forest) Stats() obs.Stats {
	return obs.Stats{Finds: f.finds, Unions: f.unions, PathSteps: f.pathSteps}
}

// ResetStats zeroes the operation counters.
func (f *Forest) ResetStats() { f.finds, f.unions, f.pathSteps = 0, 0, 0 }

// MemoryBytes reports the heap bytes used by the forest's arrays. It feeds
// the Theorem 3 space measurements (Θ(n)).
func (f *Forest) MemoryBytes() int {
	return len(f.parent)*4 + len(f.rank) + len(f.name)*4
}
