package unionfind

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAblationMatchesForestProperty(t *testing.T) {
	variants := [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}}
	for _, v := range variants {
		v := v
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(50)
			fast := New(n)
			abl := NewAblation(n, v[0], v[1])
			for op := 0; op < 150; op++ {
				x, y := rng.Intn(n), rng.Intn(n)
				if rng.Intn(2) == 0 {
					fast.Union(x, y)
					abl.Union(x, y)
				} else if fast.Find(x) != abl.Find(x) {
					return false
				}
			}
			for x := 0; x < n; x++ {
				if fast.Find(x) != abl.Find(x) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("variant pc=%v rank=%v: %v", v[0], v[1], err)
		}
	}
}

func TestAblationWorstCaseChainStillCorrect(t *testing.T) {
	// Adversarial chain for the unoptimized variant: each union hangs the
	// taller tree under a singleton.
	n := 512
	a := NewAblation(n, false, false)
	for v := 1; v < n; v++ {
		a.Union(v, v-1) // label moves to v, tree is a path
	}
	for v := 0; v < n; v++ {
		if a.Find(v) != n-1 {
			t.Fatalf("Find(%d) = %d", v, a.Find(v))
		}
	}
}

// BenchmarkAblationUnionFind quantifies the contribution of path
// compression and union by rank on the chain workload the detector
// produces (every task eventually joined leftward).
func BenchmarkAblationUnionFind(b *testing.B) {
	const n = 1 << 13
	for _, v := range []struct {
		pc, rank bool
	}{{true, true}, {true, false}, {false, true}, {false, false}} {
		name := fmt.Sprintf("pc=%v/rank=%v", v.pc, v.rank)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := NewAblation(n, v.pc, v.rank)
				for x := 1; x < n; x++ {
					a.Union(x, x-1)
				}
				for x := 0; x < n; x++ {
					if a.Find(x) != n-1 {
						b.Fatal("wrong label")
					}
				}
			}
		})
	}
}
