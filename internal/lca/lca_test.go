package lca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/traversal"
)

// randomTree returns a random parent array rooted at 0.
func randomTree(rng *rand.Rand, n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return parent
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree([]int{-1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTree([]int{-1, -1}); err == nil {
		t.Fatal("two roots accepted")
	}
	if _, err := NewTree([]int{0}); err == nil {
		t.Fatal("self-parent accepted (cycle, no root)")
	}
	if _, err := NewTree([]int{-1, 5}); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
	if _, err := NewTree([]int{-1, 2, 1}); err == nil {
		t.Fatal("2-cycle accepted")
	}
}

func TestOfflineSmall(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//   / \   \
	//  3   4   5
	tree, err := NewTree([]int{-1, 0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := []Query{
		{X: 3, Y: 4}, {X: 3, Y: 5}, {X: 1, Y: 4}, {X: 5, Y: 5}, {X: 0, Y: 3},
	}
	tree.Offline(qs)
	want := []int{1, 0, 1, 5, 0}
	for i, q := range qs {
		if q.Answer != want[i] {
			t.Errorf("LCA(%d,%d) = %d, want %d", q.X, q.Y, q.Answer, want[i])
		}
	}
}

func TestOfflineOutOfRange(t *testing.T) {
	tree, _ := NewTree([]int{-1, 0})
	qs := []Query{{X: 0, Y: 9}}
	tree.Offline(qs)
	if qs[0].Answer != -1 {
		t.Fatal("out-of-range query not rejected")
	}
}

func TestOfflineMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		tree, err := NewTree(randomTree(rng, n))
		if err != nil {
			return false
		}
		qs := make([]Query, 0, 80)
		for k := 0; k < 80; k++ {
			qs = append(qs, Query{X: rng.Intn(n), Y: rng.Intn(n)})
		}
		tree.Offline(qs)
		for _, q := range qs {
			if q.Answer != tree.Naive(q.X, q.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// postOrderTraversal renders a rooted tree as the paper's traversal of
// the child→parent semilattice: children first, then the arc to the
// parent (the child's last-arc), then the parent's loop.
func postOrderTraversal(tree *Tree) traversal.T {
	var out traversal.T
	var visit func(v int)
	visit = func(v int) {
		for _, c := range tree.children[v] {
			visit(c)
			out = append(out, traversal.Item{Kind: traversal.LastArc, S: c, T: v})
		}
		// Arc items precede the loop per the traversal ordering; here
		// the in-arcs of v were appended by the recursion above.
		out = append(out, traversal.Item{Kind: traversal.Loop, S: v, T: v})
	}
	visit(tree.Root())
	return out
}

// TestRemark2WalkerComputesLCA: running the paper's Walk/Sup over the
// post-order traversal of a tree answers LCA queries — Remark 2's claim
// that the suprema algorithm degenerates to Tarjan's on trees. Moreover
// the answered root is always unvisited (the simplified Theorem 1).
func TestRemark2WalkerComputesLCA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		tree, err := NewTree(randomTree(rng, n))
		if err != nil {
			return false
		}
		tr := postOrderTraversal(tree)
		w := core.NewWalker(n)
		visited := make([]bool, n)
		for _, it := range tr {
			// Arcs must be processed *after* querying at the previous
			// loop; feeding in order is exactly Walk.
			w.Feed(it)
			if it.Kind != traversal.Loop {
				continue
			}
			cur := it.S
			for x := 0; x < n; x++ {
				if !visited[x] {
					continue
				}
				got := w.Sup(x, cur)
				want := tree.Naive(x, cur)
				// In a tree the supremum of a visited x with the current
				// vertex is the LCA; when x is in a completed subtree
				// the answer is the (unvisited) root r, and when the LCA
				// is cur itself Walk returns cur.
				if got != want {
					return false
				}
			}
			visited[cur] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
