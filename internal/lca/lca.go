// Package lca implements Tarjan's offline lowest-common-ancestor
// algorithm on rooted trees — the algorithm the paper's suprema finder
// extends (Remark 2: "we can see Tarjan's algorithm as finding suprema in
// a semilattice with the shape of a tree", and the simplified Theorem 1
// where the root r is never visited at query time, so sup{x, t} = r
// always).
//
// The package exists both as a usable batched LCA oracle and as an
// executable witness of the generalization claim: its answers are tested
// to coincide with the paper's Walk/Sup run over the corresponding tree
// traversal.
package lca

import (
	"fmt"

	"repro/internal/unionfind"
)

// Tree is a rooted tree on dense vertices 0..n-1.
type Tree struct {
	n        int
	root     int
	parent   []int
	children [][]int
}

// NewTree builds a tree from a parent array; parent[root] must be -1.
func NewTree(parent []int) (*Tree, error) {
	n := len(parent)
	t := &Tree{n: n, root: -1, parent: append([]int(nil), parent...), children: make([][]int, n)}
	for v, p := range parent {
		switch {
		case p == -1:
			if t.root != -1 {
				return nil, fmt.Errorf("lca: multiple roots %d and %d", t.root, v)
			}
			t.root = v
		case p < 0 || p >= n:
			return nil, fmt.Errorf("lca: parent of %d out of range: %d", v, p)
		default:
			t.children[p] = append(t.children[p], v)
		}
	}
	if t.root == -1 {
		return nil, fmt.Errorf("lca: no root")
	}
	// Reject cycles: walking up from every vertex must reach the root in
	// at most n steps.
	for v := range parent {
		u, steps := v, 0
		for u != t.root {
			u = parent[u]
			steps++
			if steps > n {
				return nil, fmt.Errorf("lca: cycle through %d", v)
			}
		}
	}
	return t, nil
}

// N returns the number of vertices.
func (t *Tree) N() int { return t.n }

// Root returns the root vertex.
func (t *Tree) Root() int { return t.root }

// Query is one LCA query; Answer is filled by Offline.
type Query struct {
	X, Y   int
	Answer int
}

// Offline answers all queries with Tarjan's algorithm: one DFS, one
// union-find, Θ((n+m)·α) time. Queries are answered in place.
//
// The classic formulation: when leaving vertex v, union v into its
// parent's set keeping the parent's subtree ancestor as the label; a
// query {x, y} is answered at the second of its endpoints to finish, as
// Find(first endpoint).
func (t *Tree) Offline(queries []Query) {
	// Bucket queries by endpoint.
	byVertex := make([][]int, t.n)
	for i, q := range queries {
		if q.X < 0 || q.X >= t.n || q.Y < 0 || q.Y >= t.n {
			queries[i].Answer = -1
			continue
		}
		byVertex[q.X] = append(byVertex[q.X], i)
		byVertex[q.Y] = append(byVertex[q.Y], i)
	}
	uf := unionfind.New(t.n)
	visited := make([]bool, t.n)

	// Iterative post-order DFS: process a vertex's queries when first
	// seen, union into parent when its subtree completes.
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: t.root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next == 0 {
			v := f.v
			visited[v] = true
			for _, qi := range byVertex[v] {
				q := &queries[qi]
				other := q.X
				if other == v && q.X == q.Y {
					// Self-query.
					q.Answer = v
					continue
				}
				if other == v {
					other = q.Y
				}
				if visited[other] {
					q.Answer = uf.Find(other)
				}
			}
		}
		if f.next < len(t.children[f.v]) {
			c := t.children[f.v][f.next]
			f.next++
			stack = append(stack, frame{v: c})
			continue
		}
		// Subtree of f.v complete: union into parent, keeping the
		// parent as the set label (the current subtree ancestor).
		v := f.v
		stack = stack[:len(stack)-1]
		if p := t.parent[v]; p >= 0 {
			uf.Union(p, v)
		}
	}
}

// Naive answers one query by walking ancestor paths; O(depth), used as
// the test oracle.
func (t *Tree) Naive(x, y int) int {
	anc := map[int]bool{}
	for v := x; ; v = t.parent[v] {
		anc[v] = true
		if v == t.root {
			break
		}
	}
	for v := y; ; v = t.parent[v] {
		if anc[v] {
			return v
		}
		if v == t.root {
			break
		}
	}
	return t.root
}
