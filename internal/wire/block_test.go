package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fj"
)

// roundTripBlock encodes events through enc and decodes them back,
// asserting seq and events survive exactly.
func roundTripBlock(t *testing.T, enc *BlockEncoder, dec *BlockDecoder, seq uint64, events []fj.Event) []byte {
	t.Helper()
	payload := enc.AppendBlock(nil, seq, events)
	gotSeq, got, rawLen, err := dec.DecodeBlockInto(nil, payload)
	if err != nil {
		t.Fatalf("DecodeBlockInto: %v", err)
	}
	if gotSeq != seq {
		t.Fatalf("seq = %d, want %d", gotSeq, seq)
	}
	if rawLen != len(fj.AppendEvents(nil, events)) {
		t.Fatalf("rawLen = %d, want %d", rawLen, len(fj.AppendEvents(nil, events)))
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %v != %v", i, got[i], events[i])
		}
	}
	return payload
}

func TestBlockRoundTrip(t *testing.T) {
	var enc BlockEncoder
	var dec BlockDecoder
	roundTripBlock(t, &enc, &dec, 1, nil)
	roundTripBlock(t, &enc, &dec, 2, sampleEvents())
	// Extreme field values: huge addresses, large task ids, wraparound
	// deltas in both directions.
	roundTripBlock(t, &enc, &dec, 3, []fj.Event{
		{Kind: fj.EvWrite, T: 0, Loc: ^fj.Addr(0)},
		{Kind: fj.EvRead, T: 1 << 30, Loc: 0},
		{Kind: fj.EvFork, T: 0, U: 1 << 30},
		{Kind: fj.EvJoin, T: 1 << 30, U: 0},
		{Kind: fj.EvHalt, T: 3},
	})
}

// TestBlockCompressesRepetitiveTrace pins the tentpole claim: the
// regular fork-join event structure (a pipeline-like read/write loop
// over striding addresses) must compress well past the 4x acceptance
// bar — in fact to well under a byte per event.
func TestBlockCompressesRepetitiveTrace(t *testing.T) {
	var events []fj.Event
	for i := 0; i < 4096; i++ {
		loc := fj.Addr(0x1000 + 8*(i%16))
		events = append(events, fj.Event{Kind: fj.EvRead, T: i % 4, Loc: loc})
		events = append(events, fj.Event{Kind: fj.EvWrite, T: i % 4, Loc: loc + 1})
	}
	var enc BlockEncoder
	var dec BlockDecoder
	payload := roundTripBlock(t, &enc, &dec, 9, events)
	raw := len(fj.AppendEvents(nil, events))
	if ratio := float64(raw) / float64(len(payload)); ratio < 4 {
		t.Fatalf("compression ratio %.2f < 4 (raw %d, wire %d)", ratio, raw, len(payload))
	}
	if bpe := float64(len(payload)) / float64(len(events)); bpe > 1.0 {
		t.Fatalf("bytes/event %.3f > 1.0 on a repetitive trace", bpe)
	}
	if enc.Blocks != 1 || enc.RawBytes == 0 || enc.WireBytes == 0 {
		t.Fatalf("encoder accounting: %+v", enc)
	}
}

// TestBlockIncompressibleFallsBack feeds a batch with no structure at
// all (random tasks, random addresses) and checks the codec never
// expands the batch beyond the raw form plus the small block header.
func TestBlockIncompressibleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var events []fj.Event
	for i := 0; i < 2000; i++ {
		events = append(events, fj.Event{
			Kind: fj.EvRead + fj.EventKind(rng.Intn(2)),
			T:    rng.Intn(1 << 20),
			Loc:  fj.Addr(rng.Uint64()),
		})
	}
	var enc BlockEncoder
	var dec BlockDecoder
	payload := roundTripBlock(t, &enc, &dec, 4, events)
	raw := len(fj.AppendEvents(nil, events))
	if len(payload) > raw+32 {
		t.Fatalf("incompressible batch expanded: wire %d, raw %d", len(payload), raw)
	}
}

// TestBlockSelfContained checks that a block decodes identically on a
// fresh decoder — the property resume depends on, since a resent block
// may land on a freshly restarted server.
func TestBlockSelfContained(t *testing.T) {
	var enc BlockEncoder
	warm := enc.AppendBlock(nil, 1, sampleEvents())
	second := enc.AppendBlock(nil, 2, sampleEvents())

	var warmDec BlockDecoder
	if _, _, _, err := warmDec.DecodeBlockInto(nil, warm); err != nil {
		t.Fatalf("warm decode: %v", err)
	}
	_, a, _, err := warmDec.DecodeBlockInto(nil, second)
	if err != nil {
		t.Fatalf("warm decode of second block: %v", err)
	}
	var coldDec BlockDecoder
	_, b, _, err := coldDec.DecodeBlockInto(nil, second)
	if err != nil {
		t.Fatalf("cold decode of second block: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("warm and cold decode disagree: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: warm %v, cold %v", i, a[i], b[i])
		}
	}
}

// TestBlockDecoderRejectsHostileInput covers the corruption vocabulary
// the decoder must refuse: truncations, bad schemes, lying headers, and
// copy tokens reaching outside the window.
func TestBlockDecoderRejectsHostileInput(t *testing.T) {
	var enc BlockEncoder
	good := enc.AppendBlock(nil, 5, sampleEvents())

	cases := map[string][]byte{
		"empty":         {},
		"zero seq":      {0x00},
		"truncated hdr": good[:2],
		"bad scheme":    {5, 1, 4, 99, 1, 2, 3, 4},
		// scheme raw with a body shorter than the declared raw length
		"raw length lie": {5, 2, 10, blockRaw, 0, 0},
		// scheme delta, copy token before any literal exists
		"copy from nothing": {5, 2, 4, blockDelta, 2, 1},
		// scheme delta, literal then a copy with lag 0
		"zero lag": {5, 2, 4, blockDelta, 0, byte(fj.EvHalt), 0, 1, 0},
		// scheme flate with garbage body
		"flate garbage": {5, 2, 4, blockFlate, 0xde, 0xad, 0xbe, 0xef},
	}
	for name, payload := range cases {
		var dec BlockDecoder
		if _, _, _, err := dec.DecodeBlockInto(nil, payload); err == nil {
			t.Errorf("%s: decoder accepted hostile payload", name)
		}
	}

	// Every single-byte truncation of a valid payload must error (the
	// CRC layer normally catches this, but the decoder must hold alone).
	for cut := 0; cut < len(good); cut++ {
		var dec BlockDecoder
		if _, _, _, err := dec.DecodeBlockInto(nil, good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Truncation mid-payload must be classifiable; a cut inside a delta
	// token stream reports ErrTruncated.
	repetitive := make([]fj.Event, 256)
	for i := range repetitive {
		repetitive[i] = fj.Event{Kind: fj.EvWrite, T: 1, Loc: 0x40}
	}
	deltaBlock := enc.AppendBlock(nil, 6, repetitive)
	var dec BlockDecoder
	if _, _, _, err := dec.DecodeBlockInto(nil, deltaBlock[:len(deltaBlock)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tail truncation: got %v, want ErrTruncated", err)
	}
}

// TestBlockDecodeIntoReusesSlab checks DecodeBlockInto appends to the
// caller's buffer without per-event allocation once capacity exists.
func TestBlockDecodeIntoReusesSlab(t *testing.T) {
	events := make([]fj.Event, 0, 512)
	for i := 0; i < 256; i++ {
		events = append(events, fj.Event{Kind: fj.EvWrite, T: 1, Loc: fj.Addr(i)})
	}
	var enc BlockEncoder
	payload := enc.AppendBlock(nil, 1, events)
	var dec BlockDecoder
	if _, _, _, err := dec.DecodeBlockInto(nil, payload); err != nil {
		t.Fatalf("warmup decode: %v", err)
	}
	slab := make([]fj.Event, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		_, out, _, err := dec.DecodeBlockInto(slab[:0], payload)
		if err != nil || len(out) != len(events) {
			t.Fatalf("decode: %d events, %v", len(out), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeBlockInto allocates %.1f/op into a presized slab", allocs)
	}
}

func TestHelloWelcomeV3RoundTrip(t *testing.T) {
	h := Hello{Engine: "2d", BatchSize: 128, Token: 0xfeed, Caps: CapCompress}
	got, err := DecodeHelloV3(EncodeHelloV3(h))
	if err != nil || got != h {
		t.Fatalf("hello v3 round trip: %+v -> %+v (%v)", h, got, err)
	}
	// A v2 decoder must still parse the v2 prefix of a v3 hello.
	gotV2, err := DecodeHelloV2(EncodeHelloV3(h))
	if err != nil {
		t.Fatalf("v2 decode of v3 hello: %v", err)
	}
	if gotV2.Engine != h.Engine || gotV2.Token != h.Token || gotV2.Caps != 0 {
		t.Fatalf("v2 decode of v3 hello: %+v", gotV2)
	}
	// The trailing auth credential rides after RouteKey and round-trips;
	// a hello without it decodes with Auth empty (older senders).
	ha := Hello{Engine: "2d", Caps: CapCompress | CapTenant, RouteKey: 9, Auth: "acme:s3cret"}
	gotA, err := DecodeHelloV3(EncodeHelloV3(ha))
	if err != nil || gotA != ha {
		t.Fatalf("hello v3 auth round trip: %+v -> %+v (%v)", ha, gotA, err)
	}
	// A pre-Auth v3 payload (v2 form + caps + routekey only) still
	// decodes: both trailing fields are optional.
	old := EncodeHelloV2(ha)
	old = binary.AppendUvarint(old, ha.Caps)
	old = binary.AppendUvarint(old, ha.RouteKey)
	gotOld, err := DecodeHelloV3(old)
	if err != nil || gotOld.Auth != "" || gotOld.RouteKey != ha.RouteKey {
		t.Fatalf("pre-auth v3 hello: %+v (%v)", gotOld, err)
	}

	w := Welcome{Session: 3, Token: 0xbeef, NextSeq: 17, Caps: CapCompress}
	gotW, err := DecodeWelcomeV3(EncodeWelcomeV3(w))
	if err != nil || gotW != w {
		t.Fatalf("welcome v3 round trip: %+v -> %+v (%v)", w, gotW, err)
	}
	if _, err := DecodeWelcomeV3(EncodeWelcomeV2(w)); err == nil {
		t.Fatal("v3 decode of a v2 welcome (missing caps) must error")
	}
}

func TestMagicV3(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := ReadMagicVersion(bytes.NewReader(buf.Bytes()))
	if err != nil || v != V3 {
		t.Fatalf("ReadMagicVersion = %d, %v; want %d", v, err, V3)
	}
}

// benchEvents is a pipeline-shaped batch: regular per-cell access
// patterns whose absolute addresses drift between cells, which is what
// the greedy matcher actually faces in production traces.
func benchEvents(n int) []fj.Event {
	var events []fj.Event
	for i := 0; len(events) < n; i++ {
		st := fj.Addr(0x100000 + i%8)
		it := fj.Addr(0x200000 + i/8)
		buf := fj.Addr(0x400000) + 4*fj.Addr(i)
		events = append(events,
			fj.Event{Kind: fj.EvRead, T: i % 64, Loc: st},
			fj.Event{Kind: fj.EvWrite, T: i % 64, Loc: st},
			fj.Event{Kind: fj.EvRead, T: i % 64, Loc: it},
			fj.Event{Kind: fj.EvWrite, T: i % 64, Loc: it},
		)
		for k := fj.Addr(0); k < 4; k++ {
			events = append(events,
				fj.Event{Kind: fj.EvWrite, T: i % 64, Loc: buf + k},
				fj.Event{Kind: fj.EvRead, T: i % 64, Loc: buf + k},
			)
		}
		events = append(events, fj.Event{Kind: fj.EvRead, T: i % 64, Loc: 1})
	}
	return events[:n]
}

func BenchmarkAppendBlock(b *testing.B) {
	events := benchEvents(4096)
	var enc BlockEncoder
	var dst []byte
	b.SetBytes(int64(len(fj.AppendEvents(nil, events))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = enc.AppendBlock(dst[:0], 1, events)
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	events := benchEvents(4096)
	var enc BlockEncoder
	payload := enc.AppendBlock(nil, 1, events)
	var dec BlockDecoder
	dst := make([]fj.Event, 0, len(events))
	b.SetBytes(int64(len(fj.AppendEvents(nil, events))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, dst, _, err = dec.DecodeBlockInto(dst[:0], payload)
		if err != nil {
			b.Fatal(err)
		}
	}
}
