package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fj"
)

func sampleEvents() []fj.Event {
	return []fj.Event{
		{Kind: fj.EvBegin, T: 0},
		{Kind: fj.EvFork, T: 0, U: 1},
		{Kind: fj.EvBegin, T: 1},
		{Kind: fj.EvWrite, T: 1, Loc: 0xdeadbeef},
		{Kind: fj.EvHalt, T: 1},
		{Kind: fj.EvJoin, T: 0, U: 1},
		{Kind: fj.EvRead, T: 0, Loc: 7},
		{Kind: fj.EvHalt, T: 0},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	payload := EncodeEvents(nil, sampleEvents())
	if err := WriteFrame(&buf, FrameEvents, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameFinish, nil); err != nil {
		t.Fatal(err)
	}

	if err := ReadMagic(&buf); err != nil {
		t.Fatal(err)
	}
	ft, got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameEvents {
		t.Fatalf("frame type %v, want events", ft)
	}
	events, err := DecodeEvents(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEvents()
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: %v, want %v", i, events[i], want[i])
		}
	}
	if ft, payload, err := ReadFrame(&buf, nil); err != nil || ft != FrameFinish || len(payload) != 0 {
		t.Fatalf("finish frame: type=%v len=%d err=%v", ft, len(payload), err)
	}
}

func TestTruncatedFrameIsSentinel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameEvents, EncodeEvents(nil, sampleEvents())); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		_, _, err := ReadFrame(bytes.NewReader(data[:n]), nil)
		if err == nil {
			t.Fatalf("prefix %d/%d: read succeeded", n, len(data))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d/%d: %v does not wrap ErrTruncated", n, len(data), err)
		}
		// The fj sentinel spans both layers.
		if !errors.Is(err, fj.ErrTruncated) {
			t.Fatalf("prefix %d/%d: %v does not wrap fj.ErrTruncated", n, len(data), err)
		}
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameEvents, EncodeEvents(nil, sampleEvents())); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupted := 0
	for i := range data {
		flip := append([]byte(nil), data...)
		flip[i] ^= 0x40
		_, _, err := ReadFrame(bytes.NewReader(flip), nil)
		if errors.Is(err, ErrChecksum) {
			corrupted++
		}
		if err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
	if corrupted == 0 {
		t.Fatal("no flip ever reported ErrChecksum")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	hdr := []byte{byte(FrameEvents), 0xFF, 0xFF, 0xFF, 0xFF}
	_, _, err := ReadFrame(bytes.NewReader(hdr), nil)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(bytes.NewBuffer(nil), FrameEvents, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err = %v, want ErrFrameTooLarge", err)
	}
}

func TestBadMagic(t *testing.T) {
	if err := ReadMagic(bytes.NewReader([]byte{'R', 'D', 'S', 99})); !errors.Is(err, ErrVersion) {
		t.Fatalf("version mismatch: %v", err)
	}
	if err := ReadMagic(bytes.NewReader([]byte("HTTP"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("wrong protocol: %v", err)
	}
	if err := ReadMagic(bytes.NewReader([]byte("RD"))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short magic: %v", err)
	}
}

func TestMagicVersionNegotiation(t *testing.T) {
	for _, v := range []byte{V1, V2} {
		var buf bytes.Buffer
		if err := WriteMagicVersion(&buf, v); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMagicVersion(&buf)
		if err != nil || got != int(v) {
			t.Fatalf("version %d: got %d err=%v", v, got, err)
		}
	}
	if _, err := ReadMagicVersion(bytes.NewReader([]byte{'R', 'D', 'S', 0})); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 0: %v", err)
	}
	if _, err := ReadMagicVersion(bytes.NewReader([]byte{'R', 'D', 'S', Version + 1})); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
	if _, err := ReadMagicVersion(bytes.NewReader([]byte("GET "))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign protocol: %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{{}, {Engine: "2d"}, {Engine: "fasttrack", BatchSize: 256}} {
		got, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
	if _, err := DecodeHello([]byte{0xFF}); err == nil {
		t.Fatal("malformed hello accepted")
	}
}

func TestWelcomeReportRoundTrip(t *testing.T) {
	w, err := DecodeWelcome(EncodeWelcome(Welcome{Session: 42}))
	if err != nil || w.Session != 42 {
		t.Fatalf("welcome: %+v err=%v", w, err)
	}
	flags, body, err := DecodeReport(EncodeReport(FlagPartial, []byte(`{"x":1}`)))
	if err != nil || flags != FlagPartial || string(body) != `{"x":1}` {
		t.Fatalf("report: flags=%d body=%q err=%v", flags, body, err)
	}
}

func TestHelloV2RoundTrip(t *testing.T) {
	for _, h := range []Hello{{}, {Engine: "2d", Token: 7}, {Engine: "fasttrack", BatchSize: 256, Token: 1<<63 + 5}} {
		got, err := DecodeHelloV2(EncodeHelloV2(h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
	// The v2 payload is the v1 payload plus a token: a v1 decoder must
	// still read the common prefix, and a v2 decoder must reject a bare
	// v1 payload as truncated.
	h := Hello{Engine: "vc", BatchSize: 32, Token: 99}
	v1, err := DecodeHello(EncodeHelloV2(h))
	if err != nil || v1.Engine != "vc" || v1.BatchSize != 32 || v1.Token != 0 {
		t.Fatalf("v1 view of v2 hello: %+v err=%v", v1, err)
	}
	if _, err := DecodeHelloV2(EncodeHello(h)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("v2 decode of v1 hello: %v, want ErrTruncated", err)
	}
}

func TestWelcomeV2AckRoundTrip(t *testing.T) {
	w := Welcome{Session: 12, Token: 0xfeedface, NextSeq: 4097}
	got, err := DecodeWelcomeV2(EncodeWelcomeV2(w))
	if err != nil || got != w {
		t.Fatalf("welcome v2: %+v err=%v", got, err)
	}
	if _, err := DecodeWelcomeV2([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated welcome v2: %v", err)
	}
	seq, err := DecodeAck(EncodeAck(1 << 40))
	if err != nil || seq != 1<<40 {
		t.Fatalf("ack: %d err=%v", seq, err)
	}
	if _, err := DecodeAck(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty ack: %v", err)
	}
}

func TestEventsSeqRoundTrip(t *testing.T) {
	payload := EncodeEventsSeq(nil, 42, sampleEvents())
	seq, events, err := DecodeEventsSeq(nil, payload)
	if err != nil || seq != 42 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	want := sampleEvents()
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: %v, want %v", i, events[i], want[i])
		}
	}
	// Sequence zero is reserved ("nothing ingested" in acks).
	if _, _, err := DecodeEventsSeq(nil, EncodeEventsSeq(nil, 0, want)); err == nil {
		t.Fatal("zero sequence accepted")
	}
	if _, _, err := DecodeEventsSeq(nil, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestScratchReuse(t *testing.T) {
	var buf bytes.Buffer
	payload := EncodeEvents(nil, sampleEvents())
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&buf, FrameEvents, payload); err != nil {
			t.Fatal(err)
		}
	}
	scratch := make([]byte, 0, 1024)
	for i := 0; i < 3; i++ {
		_, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) {
			t.Fatalf("payload %d bytes, want %d", len(got), len(payload))
		}
		scratch = got[:cap(got)]
	}
}
