package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fj"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader and, when a
// frame parses, checks the invariants the server relies on: the payload
// round-trips through AppendFrame to the same bytes, and an Events
// payload decodes to events that re-encode/re-decode stably.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, FrameFinish, nil))
	f.Add(AppendFrame(nil, FrameEvents, EncodeEvents(nil, sampleEvents())))
	f.Add(AppendFrame(nil, FrameHello, EncodeHello(Hello{Engine: "2d", BatchSize: 64})))
	f.Add([]byte{byte(FrameEvents), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	// v2 vocabulary: sequenced events, resume handshake, acks,
	// heartbeats.
	f.Add(AppendFrame(nil, FrameEvents, EncodeEventsSeq(nil, 3, sampleEvents())))
	f.Add(AppendFrame(nil, FrameHello, EncodeHelloV2(Hello{Engine: "2d", BatchSize: 64, Token: 0xabcdef})))
	f.Add(AppendFrame(nil, FrameWelcome, EncodeWelcomeV2(Welcome{Session: 9, Token: 1 << 50, NextSeq: 17})))
	f.Add(AppendFrame(nil, FrameAck, EncodeAck(1<<20)))
	f.Add(AppendFrame(nil, FrameHeartbeat, nil))
	// v3 vocabulary: capability handshakes and compressed blocks.
	f.Add(AppendFrame(nil, FrameHello, EncodeHelloV3(Hello{Engine: "2d", BatchSize: 64, Token: 7, Caps: CapCompress})))
	f.Add(AppendFrame(nil, FrameWelcome, EncodeWelcomeV3(Welcome{Session: 2, Token: 0xbeef, NextSeq: 1, Caps: CapCompress})))
	f.Add(AppendFrame(nil, FrameEventsBlock, new(BlockEncoder).AppendBlock(nil, 11, sampleEvents())))

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // malformed input must only error, never panic
		}
		// A parsed frame must re-encode to a prefix of the input.
		again := AppendFrame(nil, ft, payload)
		if len(again) > len(data) || !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("re-encoded frame is not a prefix of the input")
		}
		if ft != FrameEvents {
			return
		}
		events, err := DecodeEvents(nil, payload)
		if err != nil {
			if errors.Is(err, ErrTruncated) || !errors.Is(err, fj.ErrTruncated) {
				_ = err // either classification is acceptable; just don't panic
			}
			return
		}
		reenc := EncodeEvents(nil, events)
		back, err := DecodeEvents(nil, reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded events failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("re-decode yielded %d events, want %d", len(back), len(events))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("event %d: %v != %v", i, back[i], events[i])
			}
		}
	})
}

// FuzzResume feeds arbitrary bytes to every v2 resume-protocol decoder
// — the sequence/ack/token vocabulary a hostile or corrupted peer
// controls — and checks the decoders only ever error, never panic, and
// that anything they accept round-trips stably through the encoders.
func FuzzResume(f *testing.F) {
	f.Add(EncodeHelloV2(Hello{Engine: "2d", BatchSize: 64, Token: 42}))
	f.Add(EncodeWelcomeV2(Welcome{Session: 1, Token: 0xdead, NextSeq: 2}))
	f.Add(EncodeAck(7))
	f.Add(EncodeEventsSeq(nil, 5, sampleEvents()))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeHelloV2(data); err == nil {
			if got, err := DecodeHelloV2(EncodeHelloV2(h)); err != nil || got != h {
				t.Fatalf("hello v2 round trip: %+v -> %+v (%v)", h, got, err)
			}
		}
		if w, err := DecodeWelcomeV2(data); err == nil {
			if got, err := DecodeWelcomeV2(EncodeWelcomeV2(w)); err != nil || got != w {
				t.Fatalf("welcome v2 round trip: %+v -> %+v (%v)", w, got, err)
			}
		}
		if seq, err := DecodeAck(data); err == nil {
			if got, err := DecodeAck(EncodeAck(seq)); err != nil || got != seq {
				t.Fatalf("ack round trip: %d -> %d (%v)", seq, got, err)
			}
		}
		if seq, events, err := DecodeEventsSeq(nil, data); err == nil {
			if seq == 0 {
				t.Fatal("decoder accepted sequence 0")
			}
			again, back, err := DecodeEventsSeq(nil, EncodeEventsSeq(nil, seq, events))
			if err != nil || again != seq || len(back) != len(events) {
				t.Fatalf("events seq round trip: seq %d/%d, %d/%d events (%v)",
					seq, again, len(events), len(back), err)
			}
		}
	})
}

// FuzzDecodeBlock feeds arbitrary bytes to the block decompressor — the
// payload a hostile or corrupted v3 peer controls — and checks it only
// ever errors, never panics, and that anything it accepts re-encodes to
// a block that decodes back to the same events (the codec is stable
// even if the accepted byte form differs from what our encoder emits).
func FuzzDecodeBlock(f *testing.F) {
	var enc BlockEncoder
	f.Add(enc.AppendBlock(nil, 1, nil))
	f.Add(enc.AppendBlock(nil, 2, sampleEvents()))
	repetitive := make([]fj.Event, 300)
	for i := range repetitive {
		repetitive[i] = fj.Event{Kind: fj.EvRead + fj.EventKind(i%2), T: i % 3, Loc: fj.Addr(0x100 + i%7)}
	}
	f.Add(enc.AppendBlock(nil, 3, repetitive))
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, blockDelta, 2, 200})
	f.Add([]byte{1, 1, 1, blockFlate, 0xff})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec BlockDecoder
		seq, events, rawLen, err := dec.DecodeBlockInto(nil, data)
		if err != nil {
			return // malformed input must only error, never panic
		}
		if seq == 0 {
			t.Fatal("decoder accepted sequence 0")
		}
		if rawLen > MaxFrameSize {
			t.Fatalf("decoder accepted raw length %d", rawLen)
		}
		var enc2 BlockEncoder
		again := enc2.AppendBlock(nil, seq, events)
		var dec2 BlockDecoder
		seq2, back, _, err := dec2.DecodeBlockInto(nil, again)
		if err != nil {
			t.Fatalf("re-decode of re-encoded block failed: %v", err)
		}
		if seq2 != seq || len(back) != len(events) {
			t.Fatalf("block round trip: seq %d/%d, %d/%d events", seq, seq2, len(events), len(back))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("event %d: %v != %v", i, back[i], events[i])
			}
		}
	})
}
