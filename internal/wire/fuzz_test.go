package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fj"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader and, when a
// frame parses, checks the invariants the server relies on: the payload
// round-trips through AppendFrame to the same bytes, and an Events
// payload decodes to events that re-encode/re-decode stably.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, FrameFinish, nil))
	f.Add(AppendFrame(nil, FrameEvents, EncodeEvents(nil, sampleEvents())))
	f.Add(AppendFrame(nil, FrameHello, EncodeHello(Hello{Engine: "2d", BatchSize: 64})))
	f.Add([]byte{byte(FrameEvents), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // malformed input must only error, never panic
		}
		// A parsed frame must re-encode to a prefix of the input.
		again := AppendFrame(nil, ft, payload)
		if len(again) > len(data) || !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("re-encoded frame is not a prefix of the input")
		}
		if ft != FrameEvents {
			return
		}
		events, err := DecodeEvents(nil, payload)
		if err != nil {
			if errors.Is(err, ErrTruncated) || !errors.Is(err, fj.ErrTruncated) {
				_ = err // either classification is acceptable; just don't panic
			}
			return
		}
		reenc := EncodeEvents(nil, events)
		back, err := DecodeEvents(nil, reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded events failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("re-decode yielded %d events, want %d", len(back), len(events))
		}
		for i := range events {
			if back[i] != events[i] {
				t.Fatalf("event %d: %v != %v", i, back[i], events[i])
			}
		}
	})
}
