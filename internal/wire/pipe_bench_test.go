package wire

import (
	"testing"

	"repro/internal/fj"
	"repro/internal/workload"
)

// BenchmarkAppendBlockPipeline prices the encoder on the real pipeline
// workload trace — the shape E17 gates on — cut into transport-sized
// blocks, so codec regressions show up as MB/s here before they show
// up as a failed bandwidth gate in CI.
func BenchmarkAppendBlockPipeline(b *testing.B) {
	tr := &fj.Trace{}
	if _, err := (workload.Pipeline{Stages: 8, Items: 1200, Shared: true, Payload: 4}).Run(tr); err != nil {
		b.Fatal(err)
	}
	const block = 16384
	var enc BlockEncoder
	var dst []byte
	b.SetBytes(int64(fj.EventsSize(tr.Events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(tr.Events); off += block {
			end := min(off+block, len(tr.Events))
			dst = enc.AppendBlock(dst[:0], 1, tr.Events[off:end])
		}
	}
}
