// Package wire is the raced streaming protocol: a versioned,
// length-prefixed binary framing of fj event batches, spoken between
// the client package and internal/server over any byte stream
// (normally TCP).
//
// The premise follows the compressed-trace line of work (Kini, Mathur,
// Viswanathan, "Data Race Detection on Compressed Traces"): events ship
// as dense varint-encoded batches — the same record form fj.Encode
// writes to disk — rather than one RPC per event, so the transport cost
// per memory operation is a few bytes and no per-event syscalls.
//
// # Stream layout
//
// A session opens with the 4-byte stream magic ("RDS" + version), sent
// by the client, followed by frames in both directions:
//
//	client → server: Hello, Events*, Finish
//	server → client: Welcome, Report | Error
//
// A server draining on SIGTERM may send a Report frame with the Partial
// flag before the client finishes; the report then covers the prefix of
// the stream the detector consumed — a coherent verdict, not a torn
// one.
//
// # Frame layout
//
//	1 byte  frame type
//	4 bytes payload length (little endian)
//	N bytes payload
//	4 bytes CRC32 (IEEE) over type, length and payload
//
// Every frame is checksummed so a corrupted or desynchronized stream
// fails loudly instead of feeding garbage to a detector. Short reads
// surface as errors wrapping ErrTruncated (sentinel-checkable), bad
// checksums as ErrChecksum, oversized declarations as ErrFrameTooLarge.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fj"
)

// Version is the protocol version spoken by this package.
const Version = 1

// Magic opens every session stream: "RDS" + Version.
var Magic = [4]byte{'R', 'D', 'S', Version}

// FrameType tags a frame.
type FrameType uint8

const (
	// FrameHello is the client's session request (EncodeHello payload).
	FrameHello FrameType = 1
	// FrameWelcome is the server's session grant (EncodeWelcome payload).
	FrameWelcome FrameType = 2
	// FrameEvents carries a batch of events (EncodeEvents payload).
	FrameEvents FrameType = 3
	// FrameFinish declares the client's stream complete; the server
	// answers with a Report. Empty payload.
	FrameFinish FrameType = 4
	// FrameReport carries the server's verdict (EncodeReport payload).
	FrameReport FrameType = 5
	// FrameError carries a fatal session error as UTF-8 text.
	FrameError FrameType = 6
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameEvents:
		return "events"
	case FrameFinish:
		return "finish"
	case FrameReport:
		return "report"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// MaxFrameSize bounds a frame payload (4 MiB): large enough for tens of
// thousands of events per frame, small enough that a hostile length
// prefix cannot make the server allocate unboundedly.
const MaxFrameSize = 4 << 20

// Sentinel errors; all reads wrap these so callers can errors.Is.
var (
	// ErrTruncated aliases fj.ErrTruncated: the stream ended mid-frame.
	// One sentinel spans both layers, so a caller checking a decode
	// error needs a single errors.Is.
	ErrTruncated = fj.ErrTruncated
	// ErrChecksum reports a CRC mismatch — corruption or desync.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrFrameTooLarge reports a length prefix beyond MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadMagic reports a stream that does not open with Magic (or
	// opens with an unsupported version).
	ErrBadMagic = errors.New("wire: bad stream magic")
)

const headerSize = 5 // type byte + uint32 length

// WriteMagic sends the stream-opening magic.
func WriteMagic(w io.Writer) error {
	_, err := w.Write(Magic[:])
	return err
}

// ReadMagic consumes and verifies the stream-opening magic.
func ReadMagic(r io.Reader) error {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("wire: read magic: %w", wrapEOF(err))
	}
	if m[0] != Magic[0] || m[1] != Magic[1] || m[2] != Magic[2] {
		return fmt.Errorf("%w: %q", ErrBadMagic, m[:])
	}
	if m[3] != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrBadMagic, m[3], Version)
	}
	return nil
}

// AppendFrame appends a complete frame (header, payload, CRC) to dst
// and returns the extended slice — the allocation-free encoding path
// for senders that batch frames into one write.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.NewIEEE()
	sum.Write(dst[len(dst)-len(payload)-headerSize:])
	return binary.LittleEndian.AppendUint32(dst, sum.Sum32())
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 0, headerSize+len(payload)+4)
	buf = AppendFrame(buf, t, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, reusing scratch for the payload
// when it is large enough. The returned payload aliases the scratch
// buffer (or a fresh allocation) and is valid until the next reuse.
func ReadFrame(r io.Reader, scratch []byte) (t FrameType, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame header: %w", wrapEOF(err))
	}
	t = FrameType(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	payload = scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read %s payload: %w", t, wrapEOF(err))
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read %s checksum: %w", t, wrapEOF(err))
	}
	sum := crc32.NewIEEE()
	sum.Write(hdr[:])
	sum.Write(payload)
	if got, want := sum.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame %s: %08x != %08x", ErrChecksum, t, got, want)
	}
	return t, payload, nil
}

func wrapEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}

// ---- handshake payloads -------------------------------------------------

// Hello is the client's session request.
type Hello struct {
	// Engine names the detector engine the session should run
	// (race2d.ParseEngine vocabulary; empty selects the default).
	Engine string
	// BatchSize asks the server to deliver events to the engine in
	// batches of this size. Zero delivers per event — the setting that
	// keeps remote Stats byte-identical to an unbuffered local run.
	BatchSize int
}

// EncodeHello renders h as a frame payload.
func EncodeHello(h Hello) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(h.Engine)))
	buf = append(buf, h.Engine...)
	buf = binary.AppendUvarint(buf, uint64(h.BatchSize))
	return buf
}

// DecodeHello parses an EncodeHello payload.
func DecodeHello(payload []byte) (Hello, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 || n > 1<<10 || uint64(len(payload)-k) < n {
		return Hello{}, fmt.Errorf("wire: hello: malformed engine name: %w", ErrTruncated)
	}
	h := Hello{Engine: string(payload[k : k+int(n)])}
	rest := payload[k+int(n):]
	b, k2 := binary.Uvarint(rest)
	if k2 <= 0 || b > 1<<20 {
		return Hello{}, fmt.Errorf("wire: hello: malformed batch size: %w", ErrTruncated)
	}
	h.BatchSize = int(b)
	return h, nil
}

// Welcome is the server's session grant.
type Welcome struct {
	// Session is the server-assigned session identifier, echoed in logs
	// and metrics.
	Session uint64
}

// EncodeWelcome renders w as a frame payload.
func EncodeWelcome(w Welcome) []byte {
	return binary.AppendUvarint(nil, w.Session)
}

// DecodeWelcome parses an EncodeWelcome payload.
func DecodeWelcome(payload []byte) (Welcome, error) {
	id, k := binary.Uvarint(payload)
	if k <= 0 {
		return Welcome{}, fmt.Errorf("wire: welcome: %w", ErrTruncated)
	}
	return Welcome{Session: id}, nil
}

// ---- event payloads -----------------------------------------------------

// EncodeEvents appends an Events frame payload (uvarint count + record
// stream, fj.AppendEvents form) to dst.
func EncodeEvents(dst []byte, events []fj.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	return fj.AppendEvents(dst, events)
}

// DecodeEvents parses an EncodeEvents payload, appending the events to
// dst. Trailing bytes after the declared count are a framing error.
func DecodeEvents(dst []fj.Event, payload []byte) ([]fj.Event, error) {
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return dst, fmt.Errorf("wire: events: count: %w", ErrTruncated)
	}
	if count > MaxFrameSize {
		return dst, fmt.Errorf("wire: events: implausible count %d", count)
	}
	dst, rest, err := fj.DecodeEventsBytes(dst, payload[k:], int(count))
	if err != nil {
		return dst, fmt.Errorf("wire: events: %w", err)
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("wire: events: %d trailing bytes after %d events", len(rest), count)
	}
	return dst, nil
}

// ---- report payload -----------------------------------------------------

// Report flags.
const (
	// FlagPartial marks a report produced by a draining server: it
	// covers the prefix of the stream consumed before shutdown.
	FlagPartial = 1 << 0
)

// EncodeReport renders a report frame payload: uvarint flags + the
// report's JSON bytes (race2d.Report MarshalJSON form).
func EncodeReport(flags uint64, reportJSON []byte) []byte {
	buf := binary.AppendUvarint(nil, flags)
	return append(buf, reportJSON...)
}

// DecodeReport parses an EncodeReport payload.
func DecodeReport(payload []byte) (flags uint64, reportJSON []byte, err error) {
	flags, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, nil, fmt.Errorf("wire: report: flags: %w", ErrTruncated)
	}
	return flags, payload[k:], nil
}
