// Package wire is the raced streaming protocol: a versioned,
// length-prefixed binary framing of fj event batches, spoken between
// the client package and internal/server over any byte stream
// (normally TCP).
//
// The premise follows the compressed-trace line of work (Kini, Mathur,
// Viswanathan, "Data Race Detection on Compressed Traces"): events ship
// as dense varint-encoded batches — the same record form fj.Encode
// writes to disk — rather than one RPC per event, so the transport cost
// per memory operation is a few bytes and no per-event syscalls.
//
// # Stream layout
//
// A session opens with the 4-byte stream magic ("RDS" + version), sent
// by the client, followed by frames in both directions:
//
//	client → server: Hello, (Events | Heartbeat)*, Finish
//	server → client: Welcome, (Ack | Heartbeat)*, Report | Error
//
// A server draining on SIGTERM may send a Report frame with the Partial
// flag before the client finishes; the report then covers the prefix of
// the stream the detector consumed — a coherent verdict, not a torn
// one.
//
// # Protocol versions
//
// The magic's fourth byte carries the protocol version. Version 1 is
// the original fire-and-forget stream: unsequenced Events frames, no
// acknowledgements, a dead connection kills the session. Version 2 is
// the fault-tolerant stream, justified by the paper's Theorem 4: any
// prefix of the event stream is a coherent detector state, so a session
// resumed from the last acknowledged event batch replays to an
// identical verdict. Concretely, in v2:
//
//   - Hello carries a resume token (zero for a fresh session) and
//     Welcome answers with the token to present on reconnect plus the
//     next sequence number the server expects;
//   - every Events frame carries a monotonic sequence number, and the
//     server answers with Ack frames naming the highest contiguously
//     ingested sequence — the client may discard acknowledged batches
//     from its replay buffer;
//   - duplicate sequences (a client resending past an ack it never saw)
//     are discarded, so replay after reconnect is idempotent;
//   - Heartbeat frames flow both ways to bound dead-peer detection.
//
// A v2 server keeps speaking v1 to v1 clients unchanged.
//
// Version 3 adds negotiated capabilities. Hello and Welcome grow a
// capability bitmask; the session's capability set is the intersection
// of what the client offered and what the server granted, so either
// side can veto a feature without breaking the handshake. The one v3
// capability today is CapCompress: event batches ship as EventsBlock
// frames, each a self-contained compressed block (delta/varint encoding
// of task IDs and addresses plus a copy-run layer exploiting the
// repetitive fork-join structure, with a flate fallback for
// incompressible blocks — see block.go). Blocks carry the same
// monotonic sequence numbers as v2 Events frames and are acked,
// deduplicated and resent identically, so resume semantics hold at
// block boundaries; because every block resets its own delta state, a
// block resent to a freshly restarted server decodes to the same
// events.
//
// # Version and capability table
//
//	version  magic      hello payload            welcome payload          event frames
//	V1       "RDS\x01"  engine, batch            session                  Events (unsequenced)
//	V2       "RDS\x02"  + resume token           + token, next seq        Events (seq + acks)
//	V3       "RDS\x03"  + capability bits        + granted capability     Events, and EventsBlock
//	                                               bits (intersection)    when CapCompress granted
//
//	capability   bit     meaning
//	CapCompress  1<<0    sender may use EventsBlock (compressed) frames
//	CapTenant    1<<1    hello carries a tenant auth token ("tenant:key")
//
// A server capped below a client's version refuses the handshake with
// an Error frame whose text carries both HandshakeRefusedPrefix and the
// ErrVersion text; clients treat that refusal as "downgrade and retry",
// so a v3 client lands on v2 against an older server instead of
// failing.
//
// # Tenant auth (v3, CapTenant)
//
// A v3 Hello may carry an auth token — the "tenant:key" credential the
// server checks against its -tenant-keys table — as a trailing optional
// field (after RouteKey), offered under the CapTenant bit. A server
// running with tenant keys refuses a missing or wrong credential with
// an Error frame whose text carries HandshakeRefusedPrefix plus the
// ErrAuth text; a tenant over its session or storage quota is refused
// with the ErrQuota text. Both refusals are terminal for clients —
// resending the same bad credential cannot succeed — even though they
// ride the handshake-refusal prefix (see HandshakeRefusedPrefix).
// Servers running without tenant keys ignore the field, so an
// authenticated client speaks to an open server unchanged.
//
// # Frame layout
//
//	1 byte  frame type
//	4 bytes payload length (little endian)
//	N bytes payload
//	4 bytes CRC32 (IEEE) over type, length and payload
//
// Every frame is checksummed so a corrupted or desynchronized stream
// fails loudly instead of feeding garbage to a detector. Short reads
// surface as errors wrapping ErrTruncated (sentinel-checkable), bad
// checksums as ErrChecksum, oversized declarations as ErrFrameTooLarge.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fj"
)

// Protocol versions. V1 is the original unacknowledged stream; V2 adds
// sequence numbers, acks, heartbeats and session resume; V3 adds
// negotiated capabilities (today: block compression). Version is the
// newest version this package speaks.
const (
	V1 = 1
	V2 = 2
	V3 = 3

	// Version is the current (newest) protocol version.
	Version = V3
)

// Capability bits (v3). A session's capability set is the intersection
// of the bits the client offered in Hello and the bits the server
// granted back in Welcome.
const (
	// CapCompress lets the client send EventsBlock frames: event batches
	// compressed with the trace-aware block codec in this package.
	CapCompress uint64 = 1 << 0
	// CapTenant marks a Hello carrying a tenant auth credential in its
	// trailing Auth field. A server grants the bit back when it checked
	// the credential (it runs with tenant keys); an open server leaves it
	// ungranted and ignores the field.
	CapTenant uint64 = 1 << 1
)

// Magic opens every current-version session stream: "RDS" + Version.
var Magic = [4]byte{'R', 'D', 'S', Version}

// MagicFor returns the stream-opening magic for a protocol version.
func MagicFor(version byte) [4]byte {
	return [4]byte{'R', 'D', 'S', version}
}

// FrameType tags a frame.
type FrameType uint8

const (
	// FrameHello is the client's session request (EncodeHello payload).
	FrameHello FrameType = 1
	// FrameWelcome is the server's session grant (EncodeWelcome payload).
	FrameWelcome FrameType = 2
	// FrameEvents carries a batch of events (EncodeEvents payload).
	FrameEvents FrameType = 3
	// FrameFinish declares the client's stream complete; the server
	// answers with a Report. Empty payload.
	FrameFinish FrameType = 4
	// FrameReport carries the server's verdict (EncodeReport payload).
	FrameReport FrameType = 5
	// FrameError carries a fatal session error as UTF-8 text.
	FrameError FrameType = 6
	// FrameAck (v2, server → client) names the highest contiguously
	// ingested event sequence (EncodeAck payload). The client may drop
	// acknowledged batches from its replay buffer.
	FrameAck FrameType = 7
	// FrameHeartbeat (v2, both directions) is a keepalive. The payload
	// is empty; a peer that sees no frame for several heartbeat
	// intervals may declare the connection dead.
	FrameHeartbeat FrameType = 8
	// FrameEventsBlock (v3, CapCompress) carries a batch of events as a
	// self-contained compressed block (BlockEncoder payload). Sequenced,
	// acked and resent exactly like a v2 Events frame.
	FrameEventsBlock FrameType = 9
	// FrameReplHello (v3, primary → follower) opens a store-replication
	// stream instead of a detection session: it names the source chain
	// and carries the replication credential (EncodeReplHello payload).
	FrameReplHello FrameType = 10
	// FrameReplWelcome (v3, follower → primary) answers a ReplHello with
	// the follower's exact chain position so the primary can replay from
	// there (EncodeReplWelcome payload) — the anti-entropy handshake.
	FrameReplWelcome FrameType = 11
	// FrameReplRecord (v3, primary → follower) carries one hash-chained
	// store record, byte-identical to the source log's on-disk framing
	// (EncodeReplRecord payload).
	FrameReplRecord FrameType = 12
	// FrameReplAck (v3, follower → primary) acknowledges the highest
	// contiguously applied chain position (EncodeReplAck payload).
	FrameReplAck FrameType = 13
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameEvents:
		return "events"
	case FrameFinish:
		return "finish"
	case FrameReport:
		return "report"
	case FrameError:
		return "error"
	case FrameAck:
		return "ack"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameEventsBlock:
		return "events-block"
	case FrameReplHello:
		return "repl-hello"
	case FrameReplWelcome:
		return "repl-welcome"
	case FrameReplRecord:
		return "repl-record"
	case FrameReplAck:
		return "repl-ack"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// MaxFrameSize bounds a frame payload (4 MiB): large enough for tens of
// thousands of events per frame, small enough that a hostile length
// prefix cannot make the server allocate unboundedly.
const MaxFrameSize = 4 << 20

// Sentinel errors; all reads wrap these so callers can errors.Is.
var (
	// ErrTruncated aliases fj.ErrTruncated: the stream ended mid-frame.
	// One sentinel spans both layers, so a caller checking a decode
	// error needs a single errors.Is.
	ErrTruncated = fj.ErrTruncated
	// ErrChecksum reports a CRC mismatch — corruption or desync.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrFrameTooLarge reports a length prefix beyond MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadMagic reports a stream that does not open with the "RDS"
	// protocol magic at all — the peer is not speaking this protocol.
	ErrBadMagic = errors.New("wire: bad stream magic")
	// ErrEmptyHandshake reports a connection closed before a single
	// handshake byte arrived. Health probes (a TCP connect immediately
	// closed) look exactly like this; servers treat it as a probe, not a
	// refused handshake, so probing a raced does not pollute its
	// refusal accounting.
	ErrEmptyHandshake = errors.New("wire: connection closed before handshake")
	// ErrVersion reports an "RDS" stream whose version byte this
	// endpoint does not speak.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrUnknownResume reports a resume token the server no longer (or
	// never did) know — the session expired, finished and aged out, or
	// the server restarted. Sent to clients as an Error frame carrying
	// exactly this text, so both sides can classify it.
	ErrUnknownResume = errors.New("raced: unknown resume token")
	// ErrAuth reports a missing or invalid tenant credential against a
	// server that requires one. Sent as an Error frame whose text carries
	// HandshakeRefusedPrefix plus exactly this text; clients classify the
	// refusal as terminal (retrying the same credential cannot succeed).
	ErrAuth = errors.New("invalid tenant credentials")
	// ErrQuota reports a tenant at its session or storage quota. Same
	// framing and classification as ErrAuth: refusal text under
	// HandshakeRefusedPrefix, terminal for the client.
	ErrQuota = errors.New("tenant quota exceeded")
)

// HandshakeRefusedPrefix prefixes the Error-frame text a server sends
// when a handshake failed at the transport layer (garbled magic,
// unreadable Hello). Clients treat such refusals as retryable — the
// bytes, not the request, were at fault — unlike application refusals
// (session limit, unknown engine, unknown resume), which are terminal.
const HandshakeRefusedPrefix = "raced: handshake: "

const headerSize = 5 // type byte + uint32 length

// WriteMagic sends the current-version stream-opening magic.
func WriteMagic(w io.Writer) error {
	_, err := w.Write(Magic[:])
	return err
}

// WriteMagicVersion sends the stream-opening magic for the given
// protocol version (a v1 client writes WriteMagicVersion(w, V1)).
func WriteMagicVersion(w io.Writer, version byte) error {
	m := MagicFor(version)
	_, err := w.Write(m[:])
	return err
}

// ReadMagic consumes the stream-opening magic, accepting only the
// current version. Version-negotiating servers use ReadMagicVersion.
func ReadMagic(r io.Reader) error {
	v, err := ReadMagicVersion(r)
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrVersion, v, Version)
	}
	return nil
}

// ReadMagicVersion consumes the stream-opening magic and returns the
// protocol version it announces, which is one of V1..Version; anything
// else is ErrBadMagic (not our protocol) or ErrVersion (our protocol,
// a version we do not speak).
func ReadMagicVersion(r io.Reader) (int, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		if err == io.EOF {
			// Zero bytes before EOF: a connect-and-close probe, not a
			// garbled handshake.
			return 0, fmt.Errorf("wire: read magic: %w", ErrEmptyHandshake)
		}
		return 0, fmt.Errorf("wire: read magic: %w", wrapEOF(err))
	}
	if m[0] != 'R' || m[1] != 'D' || m[2] != 'S' {
		return 0, fmt.Errorf("%w: %q", ErrBadMagic, m[:])
	}
	if m[3] < V1 || m[3] > Version {
		return 0, fmt.Errorf("%w: version %d, speak %d..%d", ErrVersion, m[3], V1, Version)
	}
	return int(m[3]), nil
}

// AppendFrame appends a complete frame (header, payload, CRC) to dst
// and returns the extended slice — the allocation-free encoding path
// for senders that batch frames into one write.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.NewIEEE()
	sum.Write(dst[len(dst)-len(payload)-headerSize:])
	return binary.LittleEndian.AppendUint32(dst, sum.Sum32())
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	buf := make([]byte, 0, headerSize+len(payload)+4)
	buf = AppendFrame(buf, t, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, reusing scratch for the payload
// when it is large enough. The returned payload aliases the scratch
// buffer (or a fresh allocation) and is valid until the next reuse.
func ReadFrame(r io.Reader, scratch []byte) (t FrameType, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame header: %w", wrapEOF(err))
	}
	t = FrameType(hdr[0])
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	payload = scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read %s payload: %w", t, wrapEOF(err))
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: read %s checksum: %w", t, wrapEOF(err))
	}
	sum := crc32.NewIEEE()
	sum.Write(hdr[:])
	sum.Write(payload)
	if got, want := sum.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame %s: %08x != %08x", ErrChecksum, t, got, want)
	}
	return t, payload, nil
}

func wrapEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}

// ---- handshake payloads -------------------------------------------------

// Hello is the client's session request.
type Hello struct {
	// Engine names the detector engine the session should run
	// (race2d.ParseEngine vocabulary; empty selects the default).
	Engine string
	// BatchSize asks the server to deliver events to the engine in
	// batches of this size. Zero delivers per event — the setting that
	// keeps remote Stats byte-identical to an unbuffered local run.
	BatchSize int
	// Token (v2 only) resumes a suspended session: zero requests a
	// fresh session, a non-zero value re-attaches to the session whose
	// Welcome carried it. Not part of the v1 payload.
	Token uint64
	// Caps (v3) is the capability bitmask the client offers
	// (CapCompress and friends). Not part of the v1/v2 payloads.
	Caps uint64
	// RouteKey (v3) is routing-relevant handshake metadata for session
	// gateways: a client-chosen placement key. A cluster gateway
	// (cmd/racedctl) consistent-hashes a non-zero RouteKey over its
	// backend ring, so sessions that should co-locate (same workload,
	// same tenant) can pin themselves to the same backend; zero lets the
	// gateway pick a key. The field rides at the end of the v3 payload
	// and is optional on decode, so pre-RouteKey v3 peers interoperate
	// unchanged; direct raced servers ignore it.
	RouteKey uint64
	// Auth (v3, CapTenant) is the tenant credential, spelled
	// "tenant:key". It rides at the end of the v3 payload after RouteKey
	// and is optional on decode, so pre-Auth v3 peers interoperate
	// unchanged; servers running without tenant keys ignore it. Gateways
	// forward the Hello payload byte-identically, so the credential
	// reaches the backend untouched.
	Auth string
}

// EncodeHello renders h as a frame payload.
func EncodeHello(h Hello) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(h.Engine)))
	buf = append(buf, h.Engine...)
	buf = binary.AppendUvarint(buf, uint64(h.BatchSize))
	return buf
}

// DecodeHello parses an EncodeHello (v1) payload.
func DecodeHello(payload []byte) (Hello, error) {
	h, _, err := decodeHello(payload)
	return h, err
}

// decodeHello parses the v1 hello fields and returns the remaining
// bytes (the v2 suffix, when present).
func decodeHello(payload []byte) (Hello, []byte, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 || n > 1<<10 || uint64(len(payload)-k) < n {
		return Hello{}, nil, fmt.Errorf("wire: hello: malformed engine name: %w", ErrTruncated)
	}
	h := Hello{Engine: string(payload[k : k+int(n)])}
	rest := payload[k+int(n):]
	b, k2 := binary.Uvarint(rest)
	if k2 <= 0 || b > 1<<20 {
		return Hello{}, nil, fmt.Errorf("wire: hello: malformed batch size: %w", ErrTruncated)
	}
	h.BatchSize = int(b)
	return h, rest[k2:], nil
}

// EncodeHelloV2 renders h as a v2 frame payload: the v1 form followed
// by the resume token (zero requests a fresh session).
func EncodeHelloV2(h Hello) []byte {
	buf := EncodeHello(h)
	return binary.AppendUvarint(buf, h.Token)
}

// DecodeHelloV2 parses an EncodeHelloV2 payload.
func DecodeHelloV2(payload []byte) (Hello, error) {
	h, _, err := decodeHelloV2(payload)
	return h, err
}

// decodeHelloV2 parses the v2 hello fields and returns the remaining
// bytes (the v3 suffix, when present).
func decodeHelloV2(payload []byte) (Hello, []byte, error) {
	h, rest, err := decodeHello(payload)
	if err != nil {
		return Hello{}, nil, err
	}
	tok, k := binary.Uvarint(rest)
	if k <= 0 {
		return Hello{}, nil, fmt.Errorf("wire: hello: malformed resume token: %w", ErrTruncated)
	}
	h.Token = tok
	return h, rest[k:], nil
}

// EncodeHelloV3 renders h as a v3 frame payload: the v2 form followed
// by the offered capability bitmask, the routing key, and the tenant
// credential.
func EncodeHelloV3(h Hello) []byte {
	buf := EncodeHelloV2(h)
	buf = binary.AppendUvarint(buf, h.Caps)
	buf = binary.AppendUvarint(buf, h.RouteKey)
	buf = binary.AppendUvarint(buf, uint64(len(h.Auth)))
	return append(buf, h.Auth...)
}

// DecodeHelloV3 parses an EncodeHelloV3 payload. The trailing routing
// key and auth credential are each optional: a v3 hello from an older
// sender decodes with RouteKey zero and Auth empty, and bytes past the
// fields this version knows are ignored so future trailing fields keep
// interoperating.
func DecodeHelloV3(payload []byte) (Hello, error) {
	h, rest, err := decodeHelloV2(payload)
	if err != nil {
		return Hello{}, err
	}
	caps, k := binary.Uvarint(rest)
	if k <= 0 {
		return Hello{}, fmt.Errorf("wire: hello: malformed capability bits: %w", ErrTruncated)
	}
	h.Caps = caps
	rest = rest[k:]
	if len(rest) > 0 {
		key, k := binary.Uvarint(rest)
		if k <= 0 {
			return Hello{}, fmt.Errorf("wire: hello: malformed route key: %w", ErrTruncated)
		}
		h.RouteKey = key
		rest = rest[k:]
	}
	if len(rest) > 0 {
		n, k := binary.Uvarint(rest)
		if k <= 0 || n > 1<<10 || uint64(len(rest)-k) < n {
			return Hello{}, fmt.Errorf("wire: hello: malformed auth credential: %w", ErrTruncated)
		}
		h.Auth = string(rest[k : k+int(n)])
	}
	return h, nil
}

// Welcome is the server's session grant.
type Welcome struct {
	// Session is the server-assigned session identifier, echoed in logs
	// and metrics.
	Session uint64
	// Token (v2) is the resume token a reconnecting client presents in
	// Hello to re-attach to this session. Never zero in a v2 Welcome.
	Token uint64
	// NextSeq (v2) is the next Events sequence number the server
	// expects: 1 for a fresh session, last-contiguously-ingested+1 on
	// resume. The client resends its replay buffer from here; earlier
	// sequences are already ingested and would be discarded.
	NextSeq uint64
	// Caps (v3) is the granted capability bitmask: the intersection of
	// what the client offered and what the server allows. The client
	// must not use a capability the Welcome did not grant.
	Caps uint64
}

// EncodeWelcome renders w as a v1 frame payload (session id only).
func EncodeWelcome(w Welcome) []byte {
	return binary.AppendUvarint(nil, w.Session)
}

// DecodeWelcome parses an EncodeWelcome (v1) payload.
func DecodeWelcome(payload []byte) (Welcome, error) {
	id, k := binary.Uvarint(payload)
	if k <= 0 {
		return Welcome{}, fmt.Errorf("wire: welcome: %w", ErrTruncated)
	}
	return Welcome{Session: id}, nil
}

// EncodeWelcomeV2 renders w as a v2 frame payload: session id, resume
// token, next expected sequence.
func EncodeWelcomeV2(w Welcome) []byte {
	buf := binary.AppendUvarint(nil, w.Session)
	buf = binary.AppendUvarint(buf, w.Token)
	return binary.AppendUvarint(buf, w.NextSeq)
}

// DecodeWelcomeV2 parses an EncodeWelcomeV2 payload.
func DecodeWelcomeV2(payload []byte) (Welcome, error) {
	var w Welcome
	for _, field := range []*uint64{&w.Session, &w.Token, &w.NextSeq} {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return Welcome{}, fmt.Errorf("wire: welcome: %w", ErrTruncated)
		}
		*field = v
		payload = payload[k:]
	}
	return w, nil
}

// EncodeWelcomeV3 renders w as a v3 frame payload: the v2 form followed
// by the granted capability bitmask.
func EncodeWelcomeV3(w Welcome) []byte {
	buf := EncodeWelcomeV2(w)
	return binary.AppendUvarint(buf, w.Caps)
}

// DecodeWelcomeV3 parses an EncodeWelcomeV3 payload.
func DecodeWelcomeV3(payload []byte) (Welcome, error) {
	var w Welcome
	for _, field := range []*uint64{&w.Session, &w.Token, &w.NextSeq, &w.Caps} {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return Welcome{}, fmt.Errorf("wire: welcome: %w", ErrTruncated)
		}
		*field = v
		payload = payload[k:]
	}
	return w, nil
}

// ---- acknowledgement payload (v2) ---------------------------------------

// EncodeAck renders the highest contiguously ingested sequence as an
// Ack frame payload.
func EncodeAck(seq uint64) []byte {
	return binary.AppendUvarint(nil, seq)
}

// DecodeAck parses an EncodeAck payload.
func DecodeAck(payload []byte) (uint64, error) {
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, fmt.Errorf("wire: ack: %w", ErrTruncated)
	}
	return seq, nil
}

// ---- event payloads -----------------------------------------------------

// EncodeEvents appends an Events frame payload (uvarint count + record
// stream, fj.AppendEvents form) to dst.
func EncodeEvents(dst []byte, events []fj.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	return fj.AppendEvents(dst, events)
}

// DecodeEvents parses an EncodeEvents payload, appending the events to
// dst. Trailing bytes after the declared count are a framing error.
func DecodeEvents(dst []fj.Event, payload []byte) ([]fj.Event, error) {
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return dst, fmt.Errorf("wire: events: count: %w", ErrTruncated)
	}
	if count > MaxFrameSize {
		return dst, fmt.Errorf("wire: events: implausible count %d", count)
	}
	dst, rest, err := fj.DecodeEventsBytes(dst, payload[k:], int(count))
	if err != nil {
		return dst, fmt.Errorf("wire: events: %w", err)
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("wire: events: %d trailing bytes after %d events", len(rest), count)
	}
	return dst, nil
}

// EncodeEventsSeq appends a v2 Events frame payload to dst: the batch's
// monotonic sequence number, then the v1 form (uvarint count + record
// stream).
func EncodeEventsSeq(dst []byte, seq uint64, events []fj.Event) []byte {
	dst = binary.AppendUvarint(dst, seq)
	return EncodeEvents(dst, events)
}

// DecodeEventsSeq parses an EncodeEventsSeq payload, appending the
// events to dst. A zero sequence is a framing error: v2 batches are
// numbered from 1 so that acks can name "nothing ingested" as 0.
func DecodeEventsSeq(dst []fj.Event, payload []byte) (uint64, []fj.Event, error) {
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, dst, fmt.Errorf("wire: events: sequence: %w", ErrTruncated)
	}
	if seq == 0 {
		return 0, dst, errors.New("wire: events: zero sequence number")
	}
	dst, err := DecodeEvents(dst, payload[k:])
	return seq, dst, err
}

// ---- report payload -----------------------------------------------------

// Report flags.
const (
	// FlagPartial marks a report produced by a draining server: it
	// covers the prefix of the stream consumed before shutdown.
	FlagPartial = 1 << 0
)

// EncodeReport renders a report frame payload: uvarint flags + the
// report's JSON bytes (race2d.Report MarshalJSON form).
func EncodeReport(flags uint64, reportJSON []byte) []byte {
	buf := binary.AppendUvarint(nil, flags)
	return append(buf, reportJSON...)
}

// DecodeReport parses an EncodeReport payload.
func DecodeReport(payload []byte) (flags uint64, reportJSON []byte, err error) {
	flags, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, nil, fmt.Errorf("wire: report: flags: %w", ErrTruncated)
	}
	return flags, payload[k:], nil
}
