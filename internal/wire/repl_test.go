package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	cases := []ReplHello{
		{},
		{SourceID: "a1b2c3"},
		{SourceID: "deadbeefcafe0123", Key: "sekrit"},
		{Key: "only-key"},
	}
	for _, want := range cases {
		got, err := DecodeReplHello(EncodeReplHello(want))
		if err != nil {
			t.Fatalf("DecodeReplHello(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("repl hello round trip: got %+v want %+v", got, want)
		}
	}
}

func TestReplHelloTolerantOfTrailingBytes(t *testing.T) {
	payload := append(EncodeReplHello(ReplHello{SourceID: "src", Key: "k"}), 0xFF, 0x01)
	got, err := DecodeReplHello(payload)
	if err != nil {
		t.Fatalf("trailing bytes should be ignored: %v", err)
	}
	if got.SourceID != "src" || got.Key != "k" {
		t.Fatalf("got %+v", got)
	}
}

func TestReplHelloRejectsMalformed(t *testing.T) {
	huge := EncodeReplHello(ReplHello{SourceID: strings.Repeat("x", MaxReplIDLen+1)})
	for name, payload := range map[string][]byte{
		"empty":       {},
		"cut-id":      EncodeReplHello(ReplHello{SourceID: "abcdef"})[:3],
		"missing-key": EncodeReplHello(ReplHello{SourceID: "abcdef"})[:7],
		"oversized":   huge,
	} {
		if _, err := DecodeReplHello(payload); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: want ErrTruncated, got %v", name, err)
		}
	}
}

func TestReplWelcomeRoundTrip(t *testing.T) {
	want := ReplWelcome{Next: 12345}
	for i := range want.Chain {
		want.Chain[i] = byte(i * 7)
	}
	got, err := DecodeReplWelcome(EncodeReplWelcome(want))
	if err != nil {
		t.Fatalf("DecodeReplWelcome: %v", err)
	}
	if got != want {
		t.Fatalf("repl welcome round trip: got %+v want %+v", got, want)
	}
	if _, err := DecodeReplWelcome(EncodeReplWelcome(want)[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short welcome: want ErrTruncated, got %v", err)
	}
}

func TestReplRecordRoundTrip(t *testing.T) {
	want := ReplRecord{Index: 77, Framed: []byte("framed-record-bytes")}
	got, err := DecodeReplRecord(EncodeReplRecord(nil, want))
	if err != nil {
		t.Fatalf("DecodeReplRecord: %v", err)
	}
	if got.Index != want.Index || !bytes.Equal(got.Framed, want.Framed) {
		t.Fatalf("repl record round trip: got %+v want %+v", got, want)
	}
	for name, payload := range map[string][]byte{
		"empty":     {},
		"no-framed": EncodeReplRecord(nil, ReplRecord{Index: 3}),
	} {
		if _, err := DecodeReplRecord(payload); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: want ErrTruncated, got %v", name, err)
		}
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	for _, want := range []uint64{0, 1, 1 << 40} {
		got, err := DecodeReplAck(EncodeReplAck(want))
		if err != nil || got != want {
			t.Fatalf("ack round trip %d: got %d err %v", want, got, err)
		}
	}
	if _, err := DecodeReplAck(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty ack: want ErrTruncated, got %v", err)
	}
}

func TestReplFrameTypeStrings(t *testing.T) {
	for ft, want := range map[FrameType]string{
		FrameReplHello:   "repl-hello",
		FrameReplWelcome: "repl-welcome",
		FrameReplRecord:  "repl-record",
		FrameReplAck:     "repl-ack",
	} {
		if got := ft.String(); got != want {
			t.Errorf("FrameType(%d).String() = %q, want %q", ft, got, want)
		}
	}
}
