package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/fj"
)

// Block codec for FrameEventsBlock (v3, CapCompress).
//
// A block payload is:
//
//	uvarint  seq      batch sequence number (>= 1, same space as v2 Events)
//	uvarint  count    number of events in the block
//	uvarint  rawLen   size of the batch in the raw record form (fj.AppendEvents)
//	1 byte   scheme   0 raw, 1 delta, 2 flate, 3 delta+flate
//	N bytes  body     scheme-dependent
//
// Scheme 1 (delta) is the trace-aware path. Each event is reduced to a
// tuple (kind, dT, dX): dT is the signed delta of the acting task id
// against the previous event's, and dX the wraparound delta of the
// counterpart task (fork/join) or address (read/write) against the
// previous value of that same field. Fork-join traces walk tasks and
// addresses in tight, regular strides, so the tuples are tiny and —
// crucially — repetitive. A second layer exploits that: the body is a
// token stream where tag 0 introduces a literal tuple (kind byte +
// zigzag varints) and tag n >= 1 copies n tuples from lag p (uvarint),
// LZ77-style with overlapping copies allowed, so `repeat N {read x;
// write y}` collapses to one literal pair plus one copy token. A block
// is fully self-contained — delta state resets at the block boundary —
// so a block resent to a freshly restarted server decodes identically,
// preserving the v2 resume guarantee.
//
// Scheme 2 wraps the raw record form in DEFLATE, for blocks where the
// deltas do not cooperate; scheme 0 ships the raw form unchanged when
// nothing wins. Scheme 3 runs DEFLATE over the delta token stream —
// the two layers compose, because the delta pass turns a trace's long
// strides into a tiny, low-entropy alphabet that Huffman coding then
// squeezes — with the inflated token-stream length framed first
// (uvarint) so the decoder can bound its read. The encoder always
// emits the smallest form it found.

// Block schemes.
const (
	blockRaw        = 0
	blockDelta      = 1
	blockFlate      = 2
	blockDeltaFlate = 3
)

// maxCopyLag bounds how far back a copy token may reach, which in turn
// bounds the decoder's window to a small fixed ring.
const maxCopyLag = 255

const ringSize = 256 // power of two > maxCopyLag

// maxBlockTask bounds decoded task ids, rejecting hostile blocks whose
// deltas walk outside any plausible id space (ids are dense from 0).
const maxBlockTask = 1 << 40

// tuple is one event in delta form.
type tuple struct {
	kind fj.EventKind
	dT   int64
	dX   uint64
}

const htabSize = 2048 // power of two

// BlockEncoder compresses event batches into FrameEventsBlock payloads.
// Not safe for concurrent use; a sender serializes AppendBlock calls
// (the client holds its write lock). The zero value is ready to use.
type BlockEncoder struct {
	tuples []tuple
	raw    []byte
	delta  []byte
	htab   [htabSize]int32 // position+1 of the last tuple hashing there
	fw     *flate.Writer
	fbuf   bytes.Buffer

	// Cumulative accounting across AppendBlock calls, for obs.Stats.
	Blocks    uint64 // blocks encoded
	RawBytes  uint64 // total raw record-form bytes in
	WireBytes uint64 // total block payload bytes out
}

// AppendBlock appends a FrameEventsBlock payload (seq + compressed
// block) to dst and returns the extended slice.
func (e *BlockEncoder) AppendBlock(dst []byte, seq uint64, events []fj.Event) []byte {
	start := len(dst)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(events)))

	rawLen := fj.EventsSize(events)
	dst = binary.AppendUvarint(dst, uint64(rawLen))

	// The raw record form is only materialized when the delta stream
	// loses — a size-only pass prices the comparison, so the common
	// (compressible) case never builds bytes it will not ship.
	scheme, body := byte(blockDelta), e.encodeDelta(events)
	if len(body) >= rawLen {
		e.raw = fj.AppendEvents(e.raw[:0], events)
		scheme, body = blockRaw, e.raw
	}
	// One flate pass over whichever form is winning; for the delta
	// stream the inflated length is framed so the decoder can bound it.
	// A delta stream that already cut the batch 8x is left alone — past
	// that point flate's single-digit-percent shavings are not worth a
	// second full pass on the sender's critical path.
	var pre [binary.MaxVarintLen64]byte
	preLen := 0
	if scheme == blockDelta && len(body)*8 < rawLen {
		dst = append(dst, scheme)
		dst = append(dst, body...)
		e.Blocks++
		e.RawBytes += uint64(rawLen)
		e.WireBytes += uint64(len(dst) - start)
		return dst
	}
	if fb := e.deflate(body); len(fb) < len(body) {
		if scheme == blockDelta {
			n := binary.PutUvarint(pre[:], uint64(len(body)))
			if len(fb)+n < len(body) {
				scheme, body, preLen = blockDeltaFlate, fb, n
			}
		} else {
			scheme, body = blockFlate, fb
		}
	}
	dst = append(dst, scheme)
	dst = append(dst, pre[:preLen]...)
	dst = append(dst, body...)

	e.Blocks++
	e.RawBytes += uint64(rawLen)
	e.WireBytes += uint64(len(dst) - start)
	return dst
}

// encodeDelta renders events as the delta+copy-run token stream,
// reusing the encoder's scratch buffers.
func (e *BlockEncoder) encodeDelta(events []fj.Event) []byte {
	tl := e.tuples[:0]
	var prevT int64
	var prevU, prevLoc uint64
	for _, ev := range events {
		t := tuple{kind: ev.Kind, dT: int64(ev.T) - prevT}
		prevT = int64(ev.T)
		switch ev.Kind {
		case fj.EvFork, fj.EvJoin:
			t.dX = uint64(ev.U) - prevU
			prevU = uint64(ev.U)
		case fj.EvRead, fj.EvWrite:
			t.dX = uint64(ev.Loc) - prevLoc
			prevLoc = uint64(ev.Loc)
		}
		tl = append(tl, t)
	}
	e.tuples = tl

	for i := range e.htab {
		e.htab[i] = 0
	}
	buf := e.delta[:0]
	lastLag := 0
	for i := 0; i < len(tl); {
		// Greedy longest match over a few cheap candidate lags: the lag
		// that matched last (periodic traces reuse it forever), the
		// short strides regular interleavings produce, and the last
		// position that hashed like tl[i].
		best, bestLag := 1, 0
		try := func(p int) {
			if p <= 0 || p > i || p > maxCopyLag || tl[i] != tl[i-p] {
				return
			}
			l := 1
			for i+l < len(tl) && tl[i+l] == tl[i+l-p] {
				l++
			}
			if l > best {
				best, bestLag = l, p
			}
		}
		// A long match on the periodic lag is already near-optimal; only
		// price the other candidates while the best run is still short.
		try(lastLag)
		if best < 32 {
			try(1)
			try(2)
			try(3)
			try(4)
			if j := int(e.htab[hashTuple(tl[i])]) - 1; j >= 0 {
				try(i - j)
			}
		}
		if bestLag > 0 && best >= 2 {
			buf = binary.AppendUvarint(buf, uint64(best))
			buf = binary.AppendUvarint(buf, uint64(bestLag))
			// Interior positions are hashed too: the cost is a few ns per
			// tuple, and the richer table keeps the delta stream small
			// enough that the flate pass below can usually be skipped —
			// a large net win on the sender's critical path.
			for j := range best {
				e.htab[hashTuple(tl[i+j])] = int32(i+j) + 1
			}
			lastLag = bestLag
			i += best
		} else {
			t := tl[i]
			buf = append(buf, 0, byte(t.kind))
			buf = binary.AppendVarint(buf, t.dT)
			switch t.kind {
			case fj.EvFork, fj.EvJoin, fj.EvRead, fj.EvWrite:
				buf = binary.AppendVarint(buf, int64(t.dX))
			}
			e.htab[hashTuple(t)] = int32(i) + 1
			i++
		}
	}
	e.delta = buf
	return buf
}

// deflate compresses raw with a reusable flate writer, returning the
// compressed bytes (valid until the next call).
func (e *BlockEncoder) deflate(raw []byte) []byte {
	e.fbuf.Reset()
	if e.fw == nil {
		e.fw, _ = flate.NewWriter(&e.fbuf, flate.BestSpeed)
	} else {
		e.fw.Reset(&e.fbuf)
	}
	if _, err := e.fw.Write(raw); err != nil {
		return raw
	}
	if err := e.fw.Close(); err != nil {
		return raw
	}
	return e.fbuf.Bytes()
}

func hashTuple(t tuple) uint32 {
	h := uint64(t.kind) * 0x9E3779B97F4A7C15
	h ^= uint64(t.dT) * 0xC2B2AE3D27D4EB4F
	h ^= t.dX * 0x165667B19E3779F9
	h ^= h >> 29
	return uint32(h) & (htabSize - 1)
}

// BlockDecoder decompresses FrameEventsBlock payloads. Not safe for
// concurrent use; a receiver keeps one per connection. The zero value
// is ready to use.
type BlockDecoder struct {
	ring [ringSize]tuple
	raw  []byte
	fr   io.ReadCloser
	frsr *bytes.Reader
}

// DecodeBlockInto parses a FrameEventsBlock payload, appending the
// decoded events to dst without per-event allocation (dst grows like
// any append target). It returns the block's sequence number, the
// extended slice, and the batch's raw record-form size (the bandwidth
// the block saved, for accounting). Hostile input yields an error,
// never a panic; truncation errors wrap ErrTruncated.
func (d *BlockDecoder) DecodeBlockInto(dst []fj.Event, payload []byte) (seq uint64, out []fj.Event, rawLen int, err error) {
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, dst, 0, fmt.Errorf("wire: block: sequence: %w", ErrTruncated)
	}
	if seq == 0 {
		return 0, dst, 0, errors.New("wire: block: zero sequence number")
	}
	payload = payload[k:]
	count, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, dst, 0, fmt.Errorf("wire: block: count: %w", ErrTruncated)
	}
	if count > MaxFrameSize {
		return 0, dst, 0, fmt.Errorf("wire: block: implausible count %d", count)
	}
	payload = payload[k:]
	rl, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, dst, 0, fmt.Errorf("wire: block: raw length: %w", ErrTruncated)
	}
	if rl > MaxFrameSize {
		return 0, dst, 0, fmt.Errorf("wire: block: implausible raw length %d", rl)
	}
	payload = payload[k:]
	if len(payload) == 0 {
		return 0, dst, 0, fmt.Errorf("wire: block: scheme: %w", ErrTruncated)
	}
	scheme, body := payload[0], payload[1:]

	switch scheme {
	case blockRaw:
		if uint64(len(body)) != rl {
			return 0, dst, 0, fmt.Errorf("wire: block: raw body is %d bytes, declared %d", len(body), rl)
		}
		dst, err = decodeRawBody(dst, body, int(count))
	case blockFlate:
		var raw []byte
		raw, err = d.inflate(body, int(rl))
		if err == nil {
			dst, err = decodeRawBody(dst, raw, int(count))
		}
	case blockDelta:
		dst, err = d.decodeDelta(dst, body, int(count))
	case blockDeltaFlate:
		dl, k := binary.Uvarint(body)
		if k <= 0 {
			return 0, dst, 0, fmt.Errorf("wire: block: delta length: %w", ErrTruncated)
		}
		// The encoder only deflates a delta stream that beat the raw
		// form, so a declared length at or past rawLen is hostile.
		if dl >= rl && rl > 0 || dl > MaxFrameSize {
			return 0, dst, 0, fmt.Errorf("wire: block: implausible delta length %d (raw %d)", dl, rl)
		}
		var stream []byte
		stream, err = d.inflate(body[k:], int(dl))
		if err == nil {
			dst, err = d.decodeDelta(dst, stream, int(count))
		}
	default:
		err = fmt.Errorf("wire: block: unknown scheme %d", scheme)
	}
	if err != nil {
		return 0, dst, 0, err
	}
	return seq, dst, int(rl), nil
}

// decodeRawBody parses exactly count raw-form records spanning body.
func decodeRawBody(dst []fj.Event, body []byte, count int) ([]fj.Event, error) {
	dst, rest, err := fj.DecodeEventsBytes(dst, body, count)
	if err != nil {
		return dst, fmt.Errorf("wire: block: %w", err)
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("wire: block: %d trailing bytes after %d events", len(rest), count)
	}
	return dst, nil
}

// inflate decompresses a flate body into the decoder's scratch buffer,
// requiring exactly rawLen bytes out.
func (d *BlockDecoder) inflate(body []byte, rawLen int) ([]byte, error) {
	if d.fr == nil {
		d.frsr = bytes.NewReader(body)
		d.fr = flate.NewReader(d.frsr)
	} else {
		d.frsr.Reset(body)
		if err := d.fr.(flate.Resetter).Reset(d.frsr, nil); err != nil {
			return nil, fmt.Errorf("wire: block: flate reset: %v", err)
		}
	}
	if cap(d.raw) < rawLen+1 {
		d.raw = make([]byte, rawLen+1)
	}
	buf := d.raw[:rawLen+1]
	n, err := io.ReadFull(d.fr, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("wire: block: flate: %v", err)
	}
	if n != rawLen {
		return nil, fmt.Errorf("wire: block: flate body inflated to %d bytes, declared %d", n, rawLen)
	}
	return buf[:rawLen], nil
}

// decodeDelta replays the delta+copy-run token stream, validating every
// decoded field so corrupt or hostile blocks error out instead of
// fabricating plausible events.
func (d *BlockDecoder) decodeDelta(dst []fj.Event, body []byte, count int) ([]fj.Event, error) {
	var prevT int64
	var prevU, prevLoc uint64
	decoded := 0
	apply := func(t tuple) error {
		if t.kind > fj.EvWrite {
			return fmt.Errorf("wire: block: event %d: unknown kind %d", decoded, t.kind)
		}
		T := prevT + t.dT
		if T < 0 || T > maxBlockTask {
			return fmt.Errorf("wire: block: event %d: task id %d out of range", decoded, T)
		}
		prevT = T
		ev := fj.Event{Kind: t.kind, T: int(T)}
		switch t.kind {
		case fj.EvFork, fj.EvJoin:
			u := prevU + t.dX
			if u > maxBlockTask {
				return fmt.Errorf("wire: block: event %d: task id %d out of range", decoded, u)
			}
			prevU = u
			ev.U = int(u)
		case fj.EvRead, fj.EvWrite:
			prevLoc += t.dX
			ev.Loc = fj.Addr(prevLoc)
		}
		d.ring[decoded&(ringSize-1)] = t
		dst = append(dst, ev)
		decoded++
		return nil
	}
	for decoded < count {
		tag, k := binary.Uvarint(body)
		if k <= 0 {
			return dst, fmt.Errorf("wire: block: event %d: token: %w", decoded, ErrTruncated)
		}
		body = body[k:]
		if tag == 0 {
			if len(body) == 0 {
				return dst, fmt.Errorf("wire: block: event %d: literal: %w", decoded, ErrTruncated)
			}
			t := tuple{kind: fj.EventKind(body[0])}
			body = body[1:]
			dT, k := binary.Varint(body)
			if k <= 0 {
				return dst, fmt.Errorf("wire: block: event %d: literal delta: %w", decoded, ErrTruncated)
			}
			body = body[k:]
			t.dT = dT
			switch t.kind {
			case fj.EvFork, fj.EvJoin, fj.EvRead, fj.EvWrite:
				dX, k := binary.Varint(body)
				if k <= 0 {
					return dst, fmt.Errorf("wire: block: event %d: literal delta: %w", decoded, ErrTruncated)
				}
				body = body[k:]
				t.dX = uint64(dX)
			}
			if err := apply(t); err != nil {
				return dst, err
			}
			continue
		}
		n := tag
		if n > uint64(count-decoded) {
			return dst, fmt.Errorf("wire: block: event %d: copy run of %d exceeds remaining %d", decoded, n, count-decoded)
		}
		lag, k := binary.Uvarint(body)
		if k <= 0 {
			return dst, fmt.Errorf("wire: block: event %d: copy lag: %w", decoded, ErrTruncated)
		}
		body = body[k:]
		if lag == 0 || lag > maxCopyLag || lag > uint64(decoded) {
			return dst, fmt.Errorf("wire: block: event %d: copy lag %d out of range", decoded, lag)
		}
		for range n {
			t := d.ring[(decoded-int(lag))&(ringSize-1)]
			if err := apply(t); err != nil {
				return dst, err
			}
		}
	}
	if len(body) != 0 {
		return dst, fmt.Errorf("wire: block: %d trailing bytes after %d events", len(body), count)
	}
	return dst, nil
}
