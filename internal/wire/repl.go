package wire

// Replication frame payloads (v3).
//
// A raced backend configured with -replicate-to opens an ordinary "RDS"
// v3 stream to each follower but sends FrameReplHello as its first
// frame instead of FrameHello. The follower answers FrameReplWelcome
// with its exact chain position (next index + running chain hash) —
// that single round trip IS the anti-entropy protocol: after a follower
// restart the primary simply replays its log from the announced
// position. Records then flow as FrameReplRecord, each carrying the
// byte-identical on-disk framing of one source-chain record (report or
// anchor), and the follower acknowledges contiguous application with
// FrameReplAck. Because the framing embeds each record's predecessor
// hash, the follower verifies the chain link before applying, so a
// replica log is bit-for-bit the same chain as its source.

import (
	"encoding/binary"
	"fmt"
)

// ChainHashSize is the size of a store chain hash on the wire. It must
// match store.HashSize; the repl package asserts the equality.
const ChainHashSize = 32

// MaxReplIDLen bounds the source-ID and credential strings in a
// ReplHello so a hostile hello cannot smuggle oversized fields.
const MaxReplIDLen = 256

// ReplHello opens a replication stream (FrameReplHello payload).
type ReplHello struct {
	// SourceID names the source chain (the primary log's persistent
	// identity); the follower keys its replica log by it.
	SourceID string
	// Key is the replication credential (-repl-key). Empty when the
	// follower accepts unauthenticated replication.
	Key string
}

// ReplWelcome reports the follower's chain position (FrameReplWelcome
// payload).
type ReplWelcome struct {
	// Next is the first chain index the follower does not have.
	Next uint64
	// Chain is the follower's running chain hash at Next (the hash of
	// its last applied record, or all zeroes for an empty replica).
	Chain [ChainHashSize]byte
}

// ReplRecord carries one source-chain record (FrameReplRecord payload).
type ReplRecord struct {
	// Index is the record's chain position in the source log.
	Index uint64
	// Framed is the record's on-disk framing, byte-identical to the
	// source segment bytes (length + prev hash + body + CRC).
	Framed []byte
}

// EncodeReplHello renders a FrameReplHello payload.
func EncodeReplHello(h ReplHello) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(h.SourceID)))
	buf = append(buf, h.SourceID...)
	buf = binary.AppendUvarint(buf, uint64(len(h.Key)))
	return append(buf, h.Key...)
}

// DecodeReplHello parses a FrameReplHello payload. Unknown trailing
// bytes are ignored so future versions can extend the hello.
func DecodeReplHello(payload []byte) (ReplHello, error) {
	var h ReplHello
	rest := payload
	for i, dst := range []*string{&h.SourceID, &h.Key} {
		n, k := binary.Uvarint(rest)
		if k <= 0 || n > MaxReplIDLen || uint64(len(rest[k:])) < n {
			return ReplHello{}, fmt.Errorf("wire: repl-hello field %d: %w", i, ErrTruncated)
		}
		*dst = string(rest[k : k+int(n)])
		rest = rest[k+int(n):]
	}
	return h, nil
}

// EncodeReplWelcome renders a FrameReplWelcome payload.
func EncodeReplWelcome(w ReplWelcome) []byte {
	buf := binary.AppendUvarint(nil, w.Next)
	return append(buf, w.Chain[:]...)
}

// DecodeReplWelcome parses a FrameReplWelcome payload.
func DecodeReplWelcome(payload []byte) (ReplWelcome, error) {
	var w ReplWelcome
	next, k := binary.Uvarint(payload)
	if k <= 0 || len(payload[k:]) < ChainHashSize {
		return ReplWelcome{}, fmt.Errorf("wire: repl-welcome: %w", ErrTruncated)
	}
	w.Next = next
	copy(w.Chain[:], payload[k:])
	return w, nil
}

// EncodeReplRecord appends a FrameReplRecord payload to dst.
func EncodeReplRecord(dst []byte, r ReplRecord) []byte {
	dst = binary.AppendUvarint(dst, r.Index)
	return append(dst, r.Framed...)
}

// DecodeReplRecord parses a FrameReplRecord payload. The returned
// Framed aliases the payload.
func DecodeReplRecord(payload []byte) (ReplRecord, error) {
	idx, k := binary.Uvarint(payload)
	if k <= 0 || len(payload) == k {
		return ReplRecord{}, fmt.Errorf("wire: repl-record: %w", ErrTruncated)
	}
	return ReplRecord{Index: idx, Framed: payload[k:]}, nil
}

// EncodeReplAck renders a FrameReplAck payload: the first chain index
// the follower has not yet contiguously applied.
func EncodeReplAck(next uint64) []byte {
	return binary.AppendUvarint(nil, next)
}

// DecodeReplAck parses a FrameReplAck payload.
func DecodeReplAck(payload []byte) (uint64, error) {
	next, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, fmt.Errorf("wire: repl-ack: %w", ErrTruncated)
	}
	return next, nil
}
