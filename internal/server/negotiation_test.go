package server_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/fj"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"

	race2d "repro"
)

// negotiationTrace is a regular pipeline-shaped workload: big enough
// that a compressed session ships real blocks and repetitive enough
// that the block codec's ratio is worth asserting on.
func negotiationTrace(t *testing.T) *fj.Trace {
	t.Helper()
	tr := &fj.Trace{}
	if _, err := (workload.Pipeline{Stages: 8, Items: 300, Shared: true, Payload: 4}).Run(tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// streamTrace runs tr through one session with the given options and
// returns the remote report plus the client's transport accounting.
func streamTrace(t *testing.T, addr string, opts client.Options, tr *fj.Trace) *race2d.Report {
	t.Helper()
	sess, err := client.DialOptions(addr, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer sess.Close()
	sess.EventBatch(tr.Events)
	rep, err := sess.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return rep
}

// requireParity asserts the remote verdict matches a local replay.
func requireParity(t *testing.T, rep *race2d.Report, tr *fj.Trace) {
	t.Helper()
	d := race2d.NewEngineSink(race2d.Engine2D)
	tr.Replay(d)
	local := d.Report()
	if rep.Count != local.Count || rep.Locations != local.Locations ||
		rep.Stats.MemOps() != local.Stats.MemOps() {
		t.Fatalf("remote verdict (races=%d locs=%d memops=%d) != local (races=%d locs=%d memops=%d)",
			rep.Count, rep.Locations, rep.Stats.MemOps(),
			local.Count, local.Locations, local.Stats.MemOps())
	}
}

// TestNegotiationMatrix pins the capability negotiation outcomes: every
// pairing of client and server protocol generations must either stream
// compressed blocks or fall back to plain event frames — never fail,
// and never change the verdict.
func TestNegotiationMatrix(t *testing.T) {
	tr := negotiationTrace(t)
	cases := []struct {
		name       string
		server     server.Config
		client     client.Options
		wantBlocks bool
	}{
		{"v3 client, v3 server", server.Config{}, client.Options{}, true},
		{"v3 client, v2-capped server", server.Config{MaxVersion: 2}, client.Options{}, false},
		{"v2-capped client, v3 server", server.Config{}, client.Options{MaxVersion: 2}, false},
		{"no-compress client, v3 server", server.Config{}, client.Options{NoCompress: true}, false},
		{"v3 client, no-compress server", server.Config{NoCompress: true}, client.Options{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, addr := startServer(t, tc.server)
			opts := tc.client
			opts.FrameEvents = 4096
			rep := streamTrace(t, addr, opts, tr)
			requireParity(t, rep, tr)
			st := srv.Stats()
			if tc.wantBlocks && st.WireBlocks == 0 {
				t.Fatal("compressed pairing shipped no block frames")
			}
			if !tc.wantBlocks && st.WireBlocks != 0 {
				t.Fatalf("fallback pairing still shipped %d block frames", st.WireBlocks)
			}
		})
	}
}

// TestNegotiationMixedSessions runs a compressed, an opted-out and a
// v2 session against one server: per-session negotiation must not
// leak — only the compressed session's events arrive as blocks, and
// all three verdicts match the local replay.
func TestNegotiationMixedSessions(t *testing.T) {
	tr := negotiationTrace(t)
	srv, addr := startServer(t, server.Config{})
	for _, opts := range []client.Options{
		{FrameEvents: 4096},
		{FrameEvents: 4096, NoCompress: true},
		{FrameEvents: 4096, MaxVersion: 2},
	} {
		requireParity(t, streamTrace(t, addr, opts, tr), tr)
	}
	st := srv.Stats()
	if st.WireBlocks == 0 {
		t.Fatal("the compressed session shipped no block frames")
	}
	// Exactly one of the three sessions negotiated blocks, so the raw
	// bytes the blocks stand for are one trace's record form.
	if want := uint64(fj.EventsSize(tr.Events)); st.WireBytesRaw != want {
		t.Fatalf("block frames stand for %d raw bytes, want one session's %d", st.WireBytesRaw, want)
	}
}

// TestNegotiationV3RefusalOnWire pins the documented refusal: a v3
// magic sent to a v2-capped server must come back as an Error frame
// carrying the handshake-refused prefix and the ErrVersion text —
// that exact shape is what clients key the downgrade-and-retry on.
func TestNegotiationV3RefusalOnWire(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxVersion: 2})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteMagicVersion(conn, wire.V3); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHelloV3(wire.Hello{Caps: wire.CapCompress})); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatalf("reading the refusal: %v", err)
	}
	if ft != wire.FrameError {
		t.Fatalf("got %v frame, want FrameError", ft)
	}
	text := string(payload)
	if !strings.HasPrefix(text, wire.HandshakeRefusedPrefix) {
		t.Errorf("refusal %q lacks prefix %q", text, wire.HandshakeRefusedPrefix)
	}
	if !strings.Contains(text, wire.ErrVersion.Error()) {
		t.Errorf("refusal %q lacks the ErrVersion text %q", text, wire.ErrVersion)
	}
}

// TestNegotiationCompressionRatio holds the codec to its keep on the
// wire it was built for: a pipeline-shaped session must compress at
// least 4x end to end, measured by the server's own accounting.
func TestNegotiationCompressionRatio(t *testing.T) {
	tr := negotiationTrace(t)
	srv, addr := startServer(t, server.Config{})
	rep := streamTrace(t, addr, client.Options{FrameEvents: 8192}, tr)
	requireParity(t, rep, tr)
	st := srv.Stats()
	if st.WireBlocks == 0 {
		t.Fatal("session shipped no block frames")
	}
	if ratio := st.CompressRatio(); ratio < 4 {
		t.Fatalf("compression ratio %.2f (%d raw -> %d wire bytes), want >= 4",
			ratio, st.WireBytesRaw, st.WireBytesBlocks)
	}
}
