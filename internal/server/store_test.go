package server_test

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/client"
	"repro/internal/fj"
	"repro/internal/prog"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/workload"
)

// openLog opens (or reopens) the durable report log in dir. NoSync
// keeps the tests fast; durability against a raced kill does not need
// the fsync, only against a host crash.
func openLog(t *testing.T, dir string) *store.Log {
	t.Helper()
	lg, err := store.OpenLog(store.LogConfig{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// runWorkload drives one seeded workload through a session against
// addr and returns the rendered report, the session's resume token,
// and the workload's task count (a fetch needs it to re-render).
func runWorkload(t *testing.T, addr string, seed int64, opts ...client.Option) (json string, token uint64, tasks int) {
	t.Helper()
	c := workload.ForkJoin{
		Seed:     seed,
		Ops:      900,
		MaxDepth: 5,
		Mix:      workload.Mix{Locs: 16, ReadFrac: 0.6},
	}
	sess, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tasks, err = c.Run(sess)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return renderJSON(t, rep, tasks, nil), sess.Token(), tasks
}

// TestStoreRestartRetrieval is the durability acceptance bar: a report
// persisted by one server instance is retrievable byte-identically
// from a fresh instance over the same log directory, by resume token
// alone.
func TestStoreRestartRetrieval(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, server.Config{Store: openLog(t, dir)})
	want, token, tasks := runWorkload(t, addr, 7)
	if token == 0 {
		t.Fatal("session has no resume token")
	}
	srv.Close() // closes the store; the "crash" loses all memory

	_, addr2 := startServer(t, server.Config{Store: openLog(t, dir)})
	f, err := client.Fetch(addr2, token)
	if err != nil {
		t.Fatalf("fetch after restart: %v", err)
	}
	// Render through the same path cmd/race2d -json uses; byte equality
	// of the rendered JSON is the bar.
	if got := renderJSON(t, f.Report, tasks, nil); got != want {
		t.Errorf("fetched report differs after restart\nwant:\n%s\ngot:\n%s", want, got)
	}

	if _, err := client.Fetch(addr2, token^0xdeadbeef); !client.IsUnknownToken(err) {
		t.Fatalf("fetch of bogus token: err = %v, want unknown-token", err)
	}
}

// TestStoreBackedMatchesMemory is the differential bar: a store-backed
// server and the default in-memory one must render byte-identical
// verdicts over the corpus programs and 20 seeded random workloads.
func TestStoreBackedMatchesMemory(t *testing.T) {
	_, addrStore := startServer(t, server.Config{Store: openLog(t, t.TempDir())})
	_, addrMem := startServer(t, server.Config{})

	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "race2d", "testdata", "*.fj"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := prog.Parse(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var out [2]string
		for i, addr := range []string{addrStore, addrMem} {
			sess, err := client.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prog.Exec(p, sess)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sess.Finish()
			sess.Close()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = renderJSON(t, rep, res.Tasks, res.LocName)
		}
		if out[0] != out[1] {
			t.Errorf("%s: store-backed verdict differs from in-memory\nstore:\n%s\nmemory:\n%s",
				filepath.Base(file), out[0], out[1])
		}
	}

	for seed := int64(1); seed <= 20; seed++ {
		a, _, _ := runWorkload(t, addrStore, seed)
		b, _, _ := runWorkload(t, addrMem, seed)
		if a != b {
			t.Errorf("seed %d: store-backed verdict differs from in-memory\nstore:\n%s\nmemory:\n%s", seed, a, b)
		}
	}
}

// TestTenantAuth checks the credential gate: with -tenant-keys
// semantics configured, missing and wrong credentials are refused with
// the terminal wire.ErrAuth text, correct ones admit, and the auth
// counters and per-tenant gauges show on /metrics.
func TestTenantAuth(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Tenants: map[string]server.Tenant{"acme": {Key: "s3cret"}},
	})

	if _, err := client.Dial(addr); err == nil || !strings.Contains(err.Error(), "invalid tenant credentials") {
		t.Fatalf("credential-less dial: err = %v, want auth refusal", err)
	}
	if _, err := client.Dial(addr, client.WithAuthToken("acme:wrong")); err == nil || !strings.Contains(err.Error(), "invalid tenant credentials") {
		t.Fatalf("wrong-key dial: err = %v, want auth refusal", err)
	}
	if _, err := client.Dial(addr, client.WithAuthToken("ghost:s3cret")); err == nil || !strings.Contains(err.Error(), "invalid tenant credentials") {
		t.Fatalf("unknown-tenant dial: err = %v, want auth refusal", err)
	}

	sess, err := client.Dial(addr, client.WithAuthToken("acme:s3cret"))
	if err != nil {
		t.Fatalf("valid credential refused: %v", err)
	}
	defer sess.Close()
	sess.Event(fj.Event{Kind: fj.EvBegin, T: 0})
	sess.Event(fj.Event{Kind: fj.EvHalt, T: 0})
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"raced_auth_failures_total 3",
		`raced_tenant_store_records{tenant="acme"} 1`,
		"raced_store_puts_total 1",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q\n%s", want, body.String())
		}
	}
}

// TestTenantQuotas checks isolation: one tenant exhausting its session
// or storage quota is refused with the terminal wire.ErrQuota text
// while other tenants stay unaffected.
func TestTenantQuotas(t *testing.T) {
	_, addr := startServer(t, server.Config{
		Store: openLog(t, t.TempDir()),
		Tenants: map[string]server.Tenant{
			"capped": {Key: "ck", MaxSessions: 1},
			"tiny":   {Key: "tk", MaxStoreBytes: 1},
			"free":   {Key: "fk"},
		},
	})

	// Session quota: the second concurrent "capped" session is refused;
	// "free" dials fine while "capped" is at its limit.
	first, err := client.Dial(addr, client.WithAuthToken("capped:ck"))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := client.Dial(addr, client.WithAuthToken("capped:ck")); err == nil || !strings.Contains(err.Error(), "tenant quota exceeded") {
		t.Fatalf("second capped session: err = %v, want quota refusal", err)
	}
	other, err := client.Dial(addr, client.WithAuthToken("free:fk"))
	if err != nil {
		t.Fatalf("unrelated tenant refused during capped's quota exhaustion: %v", err)
	}
	other.Close()

	// Storage quota: "tiny" can run once; after that report persists its
	// stored bytes exceed the 1-byte budget and the next session is
	// refused at admission. "free" keeps working.
	if json, _, _ := runWorkload(t, addr, 3, client.WithAuthToken("tiny:tk")); json == "" {
		t.Fatal("first tiny session produced no report")
	}
	if _, err := client.Dial(addr, client.WithAuthToken("tiny:tk")); err == nil || !strings.Contains(err.Error(), "tenant quota exceeded") {
		t.Fatalf("over-storage-quota dial: err = %v, want quota refusal", err)
	}
	if json, _, _ := runWorkload(t, addr, 4, client.WithAuthToken("free:fk")); json == "" {
		t.Fatal("free tenant broken by tiny's storage quota")
	}
}

// TestStoreTamperServing checks honest degradation: after a byte flip
// in the log, a restarted server still serves every report recorded
// before the damage and refuses the ones at/past it with a typed
// tamper error — it never silently serves altered bytes.
func TestStoreTamperServing(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, server.Config{Store: openLog(t, dir)})
	okJSON, okToken, okTasks := runWorkload(t, addr, 11)
	_, badToken, _ := runWorkload(t, addr, 12)
	srv.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // inside the second (last) record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	lg := openLog(t, dir)
	if lg.Tampered() == nil {
		t.Fatal("tampered log opened clean")
	}
	srv2, addr2 := startServer(t, server.Config{Store: lg})

	f, err := client.Fetch(addr2, okToken)
	if err != nil {
		t.Fatalf("pre-damage report refused: %v", err)
	}
	if got := renderJSON(t, f.Report, okTasks, nil); got != okJSON {
		t.Errorf("pre-damage report altered\nwant:\n%s\ngot:\n%s", okJSON, got)
	}
	if _, err := client.Fetch(addr2, badToken); err == nil || !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("post-damage fetch: err = %v, want tamper refusal", err)
	}

	// New sessions still get verdicts (delivery beats durability); the
	// failed persist is counted, not hidden.
	if json, _, _ := runWorkload(t, addr2, 13); json == "" {
		t.Fatal("tampered store broke live detection")
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "raced_store_put_failures_total 1") {
		t.Errorf("/metrics does not count the refused persist:\n%s", body.String())
	}
}
