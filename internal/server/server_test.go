package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/fj"
	"repro/internal/prog"
	"repro/internal/server"
	"repro/internal/workload"

	race2d "repro"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cfg)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// renderJSON renders a report exactly the way cmd/race2d -json does:
// Tasks from the local execution, locations resolved through locName.
func renderJSON(t *testing.T, rep *race2d.Report, tasks int, locName func(race2d.Addr) string) string {
	t.Helper()
	rep.Tasks = tasks
	rep.AddrName = locName
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRemoteMatchesLocalCorpus checks the acceptance bar: for every
// corpus program, the remote Report (streamed through a client session)
// renders byte-identical to the in-process one.
func TestRemoteMatchesLocalCorpus(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "race2d", "testdata", "*.fj"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, file := range files {
		for _, engine := range []race2d.Engine{race2d.Engine2D, race2d.EngineVC, race2d.EngineFastTrack} {
			t.Run(filepath.Base(file)+"/"+engine.String(), func(t *testing.T) {
				data, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				p, err := prog.Parse(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}

				d := race2d.NewEngineSink(engine)
				localRes, err := prog.Exec(p, d)
				if err != nil {
					t.Fatal(err)
				}
				local := renderJSON(t, d.Report(), localRes.Tasks, localRes.LocName)

				sess, err := client.Dial(addr, client.WithEngine(engine.String()))
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				remoteRes, err := prog.Exec(p, sess)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sess.Finish()
				if err != nil {
					t.Fatal(err)
				}
				remote := renderJSON(t, rep, remoteRes.Tasks, remoteRes.LocName)

				if local != remote {
					t.Errorf("remote report differs from local\nlocal:\n%s\nremote:\n%s", local, remote)
				}
			})
		}
	}
}

// TestRemoteMatchesLocalRandom drives the parity bar across 20 seeded
// random fork-join workloads.
func TestRemoteMatchesLocalRandom(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	for seed := int64(1); seed <= 20; seed++ {
		c := workload.ForkJoin{
			Seed:     seed,
			Ops:      1500,
			MaxDepth: 5,
			Mix:      workload.Mix{Locs: 24, ReadFrac: 0.6},
		}

		d := race2d.NewEngineSink(race2d.Engine2D)
		localTasks, err := c.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		local := renderJSON(t, d.Report(), localTasks, nil)

		sess, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		remoteTasks, err := c.Run(sess)
		if err != nil {
			sess.Close()
			t.Fatal(err)
		}
		rep, err := sess.Finish()
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		remote := renderJSON(t, rep, remoteTasks, nil)

		if local != remote {
			t.Errorf("seed %d: remote report differs from local\nlocal:\n%s\nremote:\n%s", seed, local, remote)
		}
	}
}

// streamRacyPrefix sends n write events on one task (plus the opening
// begin), flushed to the wire.
func streamRacyPrefix(t *testing.T, sess *client.Session, n int) {
	t.Helper()
	sess.Event(fj.Event{Kind: fj.EvBegin, T: 0})
	for i := 0; i < n; i++ {
		sess.Event(fj.Event{Kind: fj.EvWrite, T: 0, Loc: race2d.Addr(1 + i%8)})
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestShutdownDeliversPartialReport checks graceful drain: a session
// interrupted mid-stream still receives a coherent Report for the
// prefix the server consumed, flagged partial.
func TestShutdownDeliversPartialReport(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const sent = 2000
	streamRacyPrefix(t, sess, sent)
	// Wait until the server has demonstrably ingested something, so the
	// partial report is non-trivial.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().EventsBuffered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never ingested any events")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the drain reach the session

	rep, err := sess.Finish()
	if !errors.Is(err, client.ErrPartial) {
		t.Fatalf("Finish err = %v, want ErrPartial", err)
	}
	if rep == nil {
		t.Fatal("partial Finish returned no report")
	}
	if got := rep.Stats.MemOps(); got == 0 || got > sent {
		t.Fatalf("partial report covers %d mem ops, want 1..%d", got, sent)
	}
	if rep.Engine != race2d.Engine2D {
		t.Fatalf("partial report engine = %v", rep.Engine)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestSessionCap checks admission control: connections beyond
// MaxSessions are refused with an explanatory error, and a slot frees
// up when a session ends.
func TestSessionCap(t *testing.T) {
	srv, addr := startServer(t, server.Config{MaxSessions: 1})
	first, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	if _, err := client.Dial(addr); err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("second dial: err = %v, want session-limit refusal", err)
	}
	if got := srv.Stats().SessionsRejected; got != 1 {
		t.Fatalf("SessionsRejected = %d, want 1", got)
	}

	first.Event(fj.Event{Kind: fj.EvBegin, T: 0})
	first.Event(fj.Event{Kind: fj.EvHalt, T: 0})
	if _, err := first.Finish(); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// The slot must come back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		next, err := client.Dial(addr)
		if err == nil {
			next.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIdleEviction checks the janitor: a session that stops sending
// frames is evicted and told so.
func TestIdleEviction(t *testing.T) {
	srv, addr := startServer(t, server.Config{IdleTimeout: 50 * time.Millisecond})
	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	time.Sleep(300 * time.Millisecond)
	if _, err := sess.Finish(); err == nil || !strings.Contains(err.Error(), "evicted") {
		t.Fatalf("Finish after idling: err = %v, want eviction error", err)
	}
	if got := srv.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

// TestObservabilityEndpoints checks /healthz and /metrics.
func TestObservabilityEndpoints(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	streamRacyPrefix(t, sess, 100)
	sess.Event(fj.Event{Kind: fj.EvHalt, T: 0})
	if _, err := sess.Finish(); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for path, want := range map[string]string{
		"/healthz": `"status":"ok"`,
		"/metrics": "raced_sessions_total 1",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(body.String(), want) {
			t.Fatalf("%s: status %d body %q, want %q", path, resp.StatusCode, body.String(), want)
		}
	}
	st := srv.Stats()
	if st.Frames == 0 || st.WireBytes == 0 || st.EventsBuffered == 0 {
		t.Fatalf("wire counters not populated: %+v", st)
	}
}

// TestEngineSelection checks that the Hello engine field selects the
// server-side detector.
func TestEngineSelection(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	sess, err := client.Dial(addr, client.WithEngine("fasttrack"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Event(fj.Event{Kind: fj.EvBegin, T: 0})
	sess.Event(fj.Event{Kind: fj.EvHalt, T: 0})
	rep, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != race2d.EngineFastTrack {
		t.Fatalf("engine = %v, want fasttrack", rep.Engine)
	}

	if _, err := client.Dial(addr, client.WithEngine("no-such-engine")); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestConcurrentSessions checks isolation: K concurrent sessions each
// get their own verdict.
func TestConcurrentSessions(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	const k = 8
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		go func(seed int64) {
			c := workload.ForkJoin{
				Seed:     seed,
				Ops:      800,
				MaxDepth: 4,
				Mix:      workload.Mix{Locs: 16, ReadFrac: 0.5},
			}
			d := race2d.NewEngineSink(race2d.Engine2D)
			if _, err := c.Run(d); err != nil {
				errs <- err
				return
			}
			sess, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			if _, err := c.Run(sess); err != nil {
				errs <- err
				return
			}
			rep, err := sess.Finish()
			if err != nil {
				errs <- err
				return
			}
			if rep.Count != d.Count() || rep.Stats.MemOps() != d.Stats().MemOps() {
				errs <- fmt.Errorf("seed %d: remote verdict %d races/%d ops, local %d/%d",
					seed, rep.Count, rep.Stats.MemOps(), d.Count(), d.Stats().MemOps())
				return
			}
			errs <- nil
		}(int64(100 + i))
	}
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
