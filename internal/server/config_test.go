package server

import (
	"testing"
	"time"
)

// TestConfigDefaults checks normalized() fills the documented defaults
// and leaves explicit settings alone.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.MaxSessions != DefaultMaxSessions {
		t.Fatalf("MaxSessions = %d, want %d", c.MaxSessions, DefaultMaxSessions)
	}
	if c.ResumeWindow != DefaultResumeWindow {
		t.Fatalf("ResumeWindow = %v, want %v", c.ResumeWindow, DefaultResumeWindow)
	}
	c = Config{MaxSessions: 3, ResumeWindow: 7 * time.Second, IdleTimeout: time.Minute}.normalized()
	if c.MaxSessions != 3 || c.ResumeWindow != 7*time.Second || c.IdleTimeout != time.Minute {
		t.Fatalf("explicit config mangled: %+v", c)
	}
}

// TestJanitorPeriodClamp checks the sweep period: a quarter of the
// smallest enforced timeout, clamped so a tiny IdleTimeout cannot turn
// the janitor into a spin loop and a huge window still expires with at
// most a second of slack.
func TestJanitorPeriodClamp(t *testing.T) {
	cases := []struct {
		cfg  Config
		want time.Duration
	}{
		{Config{IdleTimeout: time.Nanosecond}, minJanitorPeriod},
		{Config{IdleTimeout: 8 * time.Millisecond}, minJanitorPeriod},
		{Config{ResumeWindow: 40 * time.Millisecond}, minJanitorPeriod},
		{Config{IdleTimeout: 200 * time.Millisecond}, 50 * time.Millisecond},
		{Config{IdleTimeout: 2 * time.Second, ResumeWindow: 10 * time.Second}, 500 * time.Millisecond},
		{Config{}, maxJanitorPeriod},                       // default 1m window / 4 = 15s, clamped down
		{Config{IdleTimeout: time.Hour}, maxJanitorPeriod}, // idle longer than the default window
		{Config{ResumeWindow: 24 * time.Hour}, maxJanitorPeriod},
	}
	for _, c := range cases {
		if got := c.cfg.normalized().janitorPeriod(); got != c.want {
			t.Errorf("janitorPeriod(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}
