// Package server is the raced session server: it accepts concurrent
// wire-protocol sessions (internal/wire), runs one detector engine per
// session, and answers each stream with the engine's Report.
//
// Every session is its own bounded pipeline. The connection reader
// decodes event frames and pushes slabs into a per-session fj.EventQueue
// — the same bounded SPSC machinery the goroutine frontend uses — and a
// consumer goroutine drains the queue into the engine. The queue's
// capacity is the session's entire buffering budget: a client that
// outruns its detector fills the queue, the reader stops reading, TCP
// flow control pushes back to the sender, and server memory stays
// bounded at (live sessions) × (queue capacity) events no matter how
// fast clients write.
//
// Admission control caps live sessions (extra connections are refused
// with an Error frame, not queued), a janitor evicts sessions idle past
// IdleTimeout, and Shutdown drains gracefully: every open session stops
// reading, finishes detecting what it already buffered, and sends a
// Report frame flagged Partial — a coherent verdict for the prefix of
// the stream the detector consumed.
//
// # Fault tolerance (protocol v2)
//
// The server speaks wire protocol v1 and v2, negotiated by the magic's
// version byte. A v2 session numbers its Events frames with contiguous
// sequence numbers and the server acknowledges the highest contiguously
// ingested sequence after every Events (and Heartbeat) frame. When a v2
// connection dies mid-stream the session is not torn down: it is
// suspended — queue, engine, and sequence cursor intact — for up to
// ResumeWindow. A reconnecting client presents the resume token from
// its Welcome; the server adopts the new connection, tells the client
// the next sequence it expects, and the client resends from there.
// Duplicate sequences (resent batches the server already ingested) are
// discarded, so the engine sees every event exactly once and the
// verdict is byte-identical to an undisturbed run — any prefix of the
// stream is a coherent detector state, so re-extending it from the last
// acknowledged point is always safe. Reports of finished v2 sessions
// are cached for ResumeWindow so a client that lost the connection
// after Finish but before the Report can resume and still collect it.
//
// # Wire compression (protocol v3)
//
// A v3 session negotiates capabilities in the handshake; when the
// server grants CapCompress (the default — Config.NoCompress withholds
// it) the client ships event batches as compressed EventsBlock frames.
// Blocks carry the same sequence numbers as v2 Events frames and are
// acked, deduplicated and resumed identically; each block is
// self-contained, so a block resent to a restarted server decodes to
// the same events. Config.MaxVersion pins the server to an older
// protocol; newer clients are refused with the documented version
// error, which they answer by downgrading.
//
// # Durable reports, tenants and quotas
//
// Every cleanly finished v2+ session's Report is persisted to
// Config.Store before the Report frame is written, so an acked verdict
// survives the process: a client that lost the Report — even to a
// server SIGKILL — resumes by token against the restarted server and
// collects the identical bytes. The default backend is the in-memory
// store (the report cache this server always had, retained for
// ResumeWindow); a raced started with -store-dir plugs in the durable
// hash-chained log (internal/store), whose open-time scan refuses, with
// a typed *store.TamperError, to serve anything at or past the first
// damaged record. Retention is the store's: the janitor calls Compact
// instead of sweeping a cache map.
//
// With Config.Tenants set the server requires a v3 "tenant:key"
// credential in the Hello (wire.CapTenant); a missing or wrong
// credential is refused with wire.ErrAuth, and per-tenant session and
// storage quotas are enforced at admission with wire.ErrQuota — both
// under wire.HandshakeRefusedPrefix but classified terminal by
// clients. One tenant exhausting its quota never disturbs another:
// admission counts sessions and stored bytes per tenant.
package server

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliflags"
	"repro/internal/fj"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/wire"

	race2d "repro"
)

// Config tunes a Server. The zero value is usable: 64 sessions, the
// default queue capacity, no idle eviction, one-minute resume window.
type Config struct {
	// MaxSessions caps concurrently live sessions; connections beyond
	// the cap are refused with an Error frame. <= 0 means 64.
	MaxSessions int
	// QueueCapacity bounds each session's event queue, in events
	// (fj.DefaultQueueCapacity when <= 0). This is the per-session
	// memory budget for buffered, not-yet-detected events.
	QueueCapacity int
	// IdleTimeout evicts sessions that deliver no frame for this long.
	// Zero disables eviction. (v2 clients send heartbeats, so a live
	// but quiet v2 client is not evicted.)
	IdleTimeout time.Duration
	// ResumeWindow bounds how long a suspended v2 session (and the
	// cached Report of a finished one) survives awaiting a resume.
	// <= 0 means DefaultResumeWindow.
	ResumeWindow time.Duration
	// Shards requests sharded 2D detection per session: each Engine2D
	// session's per-location checks fan out across this many location
	// workers (race2d.WithShards), fed from the session's single
	// structure stage. 0 or 1 keeps every session serial; other engines
	// always run serial regardless.
	Shards int
	// ShardBudget caps the total shard workers live across sessions. A
	// session that cannot acquire its full grant of Shards workers falls
	// back to serial detection — verdict-identical, just not parallel.
	// <= 0 means Shards × MaxSessions (never a constraint).
	ShardBudget int
	// MaxVersion caps the wire protocol version the server speaks
	// (0 or out of range means the newest, wire.Version). Connections
	// announcing a newer version are refused with the documented
	// version error, which v3+ clients answer by downgrading. The knob
	// exists for staged fleet rollouts and the negotiation tests.
	MaxVersion int
	// NoCompress withholds the CapCompress capability: v3 sessions are
	// accepted but granted no compression, so clients fall back to
	// plain Events frames.
	NoCompress bool
	// Store persists finished Reports before they are acked and serves
	// post-restart retrieval by resume token. Nil selects an in-memory
	// store retained for ResumeWindow — the cache semantics this server
	// always had. The server owns the store it is given and closes it on
	// Close/Shutdown.
	Store store.Store
	// Tenants, when non-empty, turns on tenant auth: every v3 Hello must
	// carry a "tenant:key" credential matching this table, and the named
	// quotas are enforced at admission. Sessions below v3 (which cannot
	// carry a credential) are refused. Empty runs the server open, with
	// every session under the anonymous "" tenant. This is only the
	// table the server STARTS with: SetTenants (the admin surface, or a
	// SIGHUP reload of -tenant-keys-file) swaps it live.
	Tenants map[string]Tenant
	// RevokeGrace is how long the in-flight sessions of a tenant removed
	// by SetTenants keep running before the janitor evicts them
	// (<= 0 means DefaultRevokeGrace). New handshakes of a revoked
	// tenant are refused immediately regardless.
	RevokeGrace time.Duration
	// AdminKey, when non-empty, enables the /admin endpoints on
	// Handler() behind "Authorization: Bearer <AdminKey>". Empty keeps
	// the admin surface disabled (requests get 403).
	AdminKey string
	// Replicas, when non-nil, makes this server a replication follower:
	// connections opening with FrameReplHello are served as replication
	// streams into the replica set, and resume-by-token falls back to
	// the replicas when the primary store does not know a token.
	Replicas *repl.ReplicaSet
	// ReplKey is the credential FrameReplHello must present when
	// Replicas is set ("" accepts unauthenticated sources).
	ReplKey string
	// Logf, when non-nil, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

// Tenant is one tenant's credential and quotas.
type Tenant struct {
	// Key is the shared secret the client presents as "tenant:key".
	Key string
	// MaxSessions caps the tenant's concurrently live sessions
	// (0 = unlimited). Exhaustion refuses the tenant's new sessions with
	// wire.ErrQuota without disturbing other tenants.
	MaxSessions int
	// MaxStoreBytes caps the tenant's live stored report bytes
	// (0 = unlimited). A tenant at the cap is refused new sessions until
	// retention reclaims space.
	MaxStoreBytes int64
}

// DefaultMaxSessions is the live-session cap used when Config leaves
// MaxSessions unset.
const DefaultMaxSessions = 64

// DefaultResumeWindow is the suspended-session / cached-report lifetime
// used when Config leaves ResumeWindow unset.
const DefaultResumeWindow = time.Minute

// DefaultRevokeGrace is how long a revoked tenant's in-flight sessions
// keep running (Config.RevokeGrace unset): long enough to finish a
// short stream, short enough that revocation means something.
const DefaultRevokeGrace = 30 * time.Second

// drainGrace bounds how long a draining or finishing session waits for
// the peer while discarding its remaining input or writing a frame.
const drainGrace = 2 * time.Second

// Janitor period clamp: the janitor wakes at a quarter of the smallest
// timeout it enforces, but never busier than minJanitorPeriod (a tiny
// IdleTimeout must not turn the janitor into a spin loop) and never
// lazier than maxJanitorPeriod (so long windows still expire promptly
// after their deadline).
const (
	minJanitorPeriod = 10 * time.Millisecond
	maxJanitorPeriod = time.Second
)

// normalized fills Config defaults.
func (c Config) normalized() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.ResumeWindow <= 0 {
		c.ResumeWindow = DefaultResumeWindow
	}
	if c.Shards < 0 {
		c.Shards = 0
	}
	if c.ShardBudget <= 0 {
		c.ShardBudget = c.Shards * c.MaxSessions
	}
	if c.MaxVersion <= 0 || c.MaxVersion > wire.Version {
		c.MaxVersion = wire.Version
	}
	if c.RevokeGrace <= 0 {
		c.RevokeGrace = DefaultRevokeGrace
	}
	return c
}

// grantedCaps is the capability set this server is willing to grant a
// v3 session.
func (c Config) grantedCaps() uint64 {
	if c.NoCompress {
		return 0
	}
	return wire.CapCompress
}

// janitorPeriod is the eviction/expiry sweep interval for this config,
// clamped to [minJanitorPeriod, maxJanitorPeriod].
func (c Config) janitorPeriod() time.Duration {
	shortest := c.ResumeWindow
	if c.IdleTimeout > 0 && c.IdleTimeout < shortest {
		shortest = c.IdleTimeout
	}
	period := shortest / 4
	if period < minJanitorPeriod {
		period = minJanitorPeriod
	}
	if period > maxJanitorPeriod {
		period = maxJanitorPeriod
	}
	return period
}

// Server is a raced session server. Create with New, run with Serve,
// stop with Shutdown (graceful) or Close (abrupt).
type Server struct {
	cfg       Config
	tokenBase uint64
	store     store.Store

	mu             sync.Mutex
	ln             net.Listener
	sessions       map[uint64]*session
	tenantSessions map[string]int // live sessions per tenant
	nextID         uint64
	closed         bool
	done           chan struct{}
	wg             sync.WaitGroup

	// Live tenant table. Guarded by tmu, not mu: SetTenants (the admin
	// surface, or a SIGHUP reload) swaps it while sessions are serving,
	// and the handshake path only ever takes the read side. Lock order:
	// mu may be held while taking tmu (admission), never the reverse
	// while blocking on mu.
	tmu                sync.RWMutex
	tenants            map[string]Tenant
	tenantAuthRefusals map[string]uint64 // keyed by names in the table: bounded cardinality

	tenantReloads     atomic.Uint64
	tenantRevocations atomic.Uint64

	// Wire-level counters (atomic: bumped on every frame).
	sessionsTotal     atomic.Uint64
	sessionsRejected  atomic.Uint64
	evictions         atomic.Uint64
	frames            atomic.Uint64
	wireBytes         atomic.Uint64
	handshakeRefusals atomic.Uint64
	resumes           atomic.Uint64
	dupsDropped       atomic.Uint64
	authFailures      atomic.Uint64
	quotaRefusals     atomic.Uint64
	storePutErrors    atomic.Uint64

	// Block-compression accounting (v3 CapCompress sessions): block
	// count, payload bytes on the wire, and the raw record-form bytes
	// those blocks decoded to — the bandwidth the codec saved.
	blocks          atomic.Uint64
	wireBytesBlocks atomic.Uint64
	wireBytesRaw    atomic.Uint64

	// Shard-worker budget accounting: live is the gauge of currently
	// granted workers, the counters classify session admissions.
	shardWorkersLive atomic.Int64
	shardSessions    atomic.Uint64
	shardFallbacks   atomic.Uint64

	// Queue backpressure accounting folded in as sessions retire.
	retired obs.Stats // guarded by mu
}

// New returns an idle Server.
func New(cfg Config) *Server {
	var b [8]byte
	rand.Read(b[:])
	cfg = cfg.normalized()
	st := cfg.Store
	if st == nil {
		// The default store is the finished-report cache this server
		// always had: in-memory, retained for ResumeWindow.
		st = store.NewMemory(cfg.ResumeWindow)
	}
	tenants := make(map[string]Tenant, len(cfg.Tenants))
	for name, t := range cfg.Tenants {
		tenants[name] = t
	}
	return &Server{
		cfg:                cfg,
		tokenBase:          binary.LittleEndian.Uint64(b[:]),
		store:              st,
		sessions:           make(map[uint64]*session),
		tenantSessions:     make(map[string]int),
		tenants:            tenants,
		tenantAuthRefusals: make(map[string]uint64),
		done:               make(chan struct{}),
	}
}

// tenantsEnabled reports whether tenant auth is currently on (the live
// table is non-empty).
func (s *Server) tenantsEnabled() bool {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	return len(s.tenants) > 0
}

// lookupTenant resolves a name against the live table.
func (s *Server) lookupTenant(name string) (Tenant, bool) {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	t, ok := s.tenants[name]
	return t, ok
}

// Tenants snapshots the live tenant table (the admin GET surface; also
// handy for tests). Mutating the returned map changes nothing.
func (s *Server) Tenants() map[string]Tenant {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	out := make(map[string]Tenant, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = t
	}
	return out
}

// SetTenants atomically replaces the live tenant table — the admin PUT
// surface and the SIGHUP reload of -tenant-keys-file both land here.
// New handshakes see the new table immediately: a rotated key is
// required at once, a removed tenant is refused at once. In-flight
// sessions are untouched by a key rotation (they already
// authenticated); sessions of a tenant REMOVED from the table get a
// revoke deadline RevokeGrace away, enforced by the janitor — long
// enough to finish a short stream, short enough that revocation means
// something. Swapping in an empty table turns tenant auth off entirely
// and revokes nobody.
func (s *Server) SetTenants(table map[string]Tenant) {
	next := make(map[string]Tenant, len(table))
	for name, t := range table {
		next[name] = t
	}
	s.tmu.Lock()
	s.tenants = next
	// Keep the refusal-counter cardinality bounded by the table.
	for name := range s.tenantAuthRefusals {
		if _, ok := next[name]; !ok {
			delete(s.tenantAuthRefusals, name)
		}
	}
	s.tmu.Unlock()
	s.tenantReloads.Add(1)

	if len(next) == 0 {
		return // auth turned off: every session is welcome
	}
	deadline := time.Now().Add(s.cfg.RevokeGrace)
	s.mu.Lock()
	for _, sess := range s.sessions {
		if _, ok := next[sess.tenant]; ok {
			// Present (possibly with a rotated key, possibly re-added
			// within a pending grace window): not revoked.
			sess.revokeDeadline = time.Time{}
		} else if sess.revokeDeadline.IsZero() {
			sess.revokeDeadline = deadline
			s.logf("session %d: tenant %q revoked, evicting in %v", sess.id, sess.tenant, s.cfg.RevokeGrace)
		}
	}
	s.mu.Unlock()
}

// countTenantRefusal bumps the per-tenant auth-refusal counter, but
// only for names present in the live table — an attacker probing
// random names must not grow the metric cardinality.
func (s *Server) countTenantRefusal(name string) {
	s.tmu.Lock()
	if _, ok := s.tenants[name]; ok {
		s.tenantAuthRefusals[name]++
	}
	s.tmu.Unlock()
}

// Store returns the server's report store (the configured one, or the
// default in-memory store).
func (s *Server) Store() store.Store { return s.store }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts sessions on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean shutdown the error is
// net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.janitor()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting, asks every live session to drain — each
// detects what it already buffered and sends a Partial report — and
// waits for them to finish, up to ctx's deadline. Suspended sessions
// have no peer to report to and are discarded.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginClose()
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess.state == stateSuspended {
			s.abandonLocked(sess)
		} else {
			sess.beginDrain(false)
		}
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return s.closeStores()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeStores closes the report store and, on a follower, the hosted
// replica set.
func (s *Server) closeStores() error {
	err := s.store.Close()
	if s.cfg.Replicas != nil {
		if rerr := s.cfg.Replicas.Close(); err == nil {
			err = rerr
		}
	}
	return err
}

// Close abruptly terminates the server and every live session.
func (s *Server) Close() error {
	s.beginClose()
	s.mu.Lock()
	for _, sess := range s.sessions {
		if sess.state == stateSuspended {
			s.abandonLocked(sess)
		} else if sess.conn != nil {
			sess.conn.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.closeStores()
}

func (s *Server) beginClose() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
	}
	s.mu.Unlock()
}

// janitor evicts sessions idle past IdleTimeout, expires suspended
// sessions past their resume deadline, and runs the store's retention
// compaction — expired persisted reports stop being served by the
// store's own Get filter; Compact reclaims their space.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.janitorPeriod())
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		cutoff := now.Add(-s.cfg.IdleTimeout).UnixNano()
		s.mu.Lock()
		for _, sess := range s.sessions {
			revoked := !sess.revokeDeadline.IsZero() && now.After(sess.revokeDeadline)
			switch {
			case sess.state == stateSuspended:
				if revoked || now.After(sess.resumeDeadline) {
					if revoked {
						s.tenantRevocations.Add(1)
						s.logf("session %d: tenant %q revoked, abandoning", sess.id, sess.tenant)
					} else {
						s.logf("session %d: resume window expired", sess.id)
					}
					s.abandonLocked(sess)
				}
			case revoked:
				s.tenantRevocations.Add(1)
				s.logf("session %d: tenant %q revoked, evicting", sess.id, sess.tenant)
				sess.revokeDeadline = time.Time{} // count the eviction once
				sess.beginDrain(true)
			case s.cfg.IdleTimeout > 0 && sess.lastActive.Load() < cutoff:
				sess.beginDrain(true)
			}
		}
		s.mu.Unlock()
		if err := s.store.Compact(); err != nil && !errors.Is(err, store.ErrTampered) {
			s.logf("store: compact: %v", err)
		}
	}
}

// abandonLocked discards a suspended session that can no longer be
// resumed (window expired, or the server is going down). Caller holds
// s.mu.
func (s *Server) abandonLocked(sess *session) {
	if sess.state == stateDone {
		return
	}
	sess.state = stateDone
	s.dropSessionLocked(sess)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.queue.Close()
		<-sess.drained
		s.foldStats(sess)
	}()
}

// errDraining refuses fresh sessions on a draining (or closed) server.
// It is sent in the retryable HandshakeRefusedPrefix class: during a
// rolling drain the client should retry — a cluster gateway reroutes
// the retry to a healthy backend once its prober notices the drain —
// rather than treat the refusal as terminal.
var errDraining = errors.New("raced: draining (not accepting sessions)")

// errSessionLimit refuses fresh sessions at the MaxSessions cap. It is
// terminal for the client: the server is healthy, just full, and
// retrying the same server is the caller's (or gateway's) decision.
var errSessionLimit = errors.New("raced: session limit reached")

// authenticate resolves the session's tenant from the Hello credential.
// An open server (empty live tenant table) admits everyone under the
// anonymous "" tenant and ignores the credential. A tenant-keyed server
// requires a v3 "tenant:key" credential matching the LIVE table — the
// one SetTenants last installed, so a rotation or revocation bites the
// very next handshake — anything else is wire.ErrAuth. The error text
// never says which part of the credential failed, and the key
// comparison is constant-time.
func (s *Server) authenticate(version int, hello wire.Hello) (string, error) {
	if !s.tenantsEnabled() {
		return "", nil
	}
	if version < wire.V3 || hello.Auth == "" {
		s.authFailures.Add(1)
		return "", fmt.Errorf("%w (tenant credential required)", wire.ErrAuth)
	}
	name, key, ok := strings.Cut(hello.Auth, ":")
	tenant, found := s.lookupTenant(name)
	if !ok || !found || subtle.ConstantTimeCompare([]byte(key), []byte(tenant.Key)) != 1 {
		s.authFailures.Add(1)
		s.countTenantRefusal(name)
		return "", wire.ErrAuth
	}
	return name, nil
}

// admit registers a new session, or refuses it with errDraining,
// errSessionLimit, or (per-tenant quota exhaustion) wire.ErrQuota.
func (s *Server) admit(conn net.Conn, version int, hello wire.Hello, tenant string) (*session, error) {
	// Tenant quota and capability decisions read the live table (and the
	// store) before taking s.mu: both have their own locks and never call
	// back into the server.
	t, keyed := s.lookupTenant(tenant)
	tenantsOn := s.tenantsEnabled()
	var storedBytes int64
	if keyed && t.MaxStoreBytes > 0 {
		storedBytes = s.store.TenantBytes(tenant)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errDraining
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, errSessionLimit
	}
	if keyed {
		if t.MaxSessions > 0 && s.tenantSessions[tenant] >= t.MaxSessions {
			s.quotaRefusals.Add(1)
			return nil, fmt.Errorf("%w: tenant %q at %d sessions", wire.ErrQuota, tenant, t.MaxSessions)
		}
		if t.MaxStoreBytes > 0 && storedBytes >= t.MaxStoreBytes {
			s.quotaRefusals.Add(1)
			return nil, fmt.Errorf("%w: tenant %q at %d stored bytes", wire.ErrQuota, tenant, storedBytes)
		}
	}
	s.nextID++
	var caps uint64
	if version >= wire.V3 {
		granted := s.cfg.grantedCaps()
		if tenantsOn {
			granted |= wire.CapTenant
		}
		caps = hello.Caps & granted
	}
	sess := &session{
		id:      s.nextID,
		token:   s.tokenBase ^ (s.nextID * 0x9E3779B97F4A7C15),
		version: version,
		caps:    caps,
		hello:   hello,
		tenant:  tenant,
		srv:     s,
		state:   stateRunning,
		conn:    conn,
		nextSeq: 1,
		queue:   fj.NewEventQueue(s.cfg.QueueCapacity, 0),
		drained: make(chan struct{}),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	s.sessions[sess.id] = sess
	s.tenantSessions[tenant]++
	s.sessionsTotal.Add(1)
	return sess, nil
}

// retire removes a finished session and folds its accounting in.
func (s *Server) retire(sess *session) {
	s.mu.Lock()
	sess.state = stateDone
	s.dropSessionLocked(sess)
	s.mu.Unlock()
	s.foldStats(sess)
}

// dropSessionLocked removes a session from the live table and releases
// its slot in the per-tenant session gauge. Caller holds s.mu.
func (s *Server) dropSessionLocked(sess *session) {
	if _, ok := s.sessions[sess.id]; !ok {
		return
	}
	delete(s.sessions, sess.id)
	if n := s.tenantSessions[sess.tenant] - 1; n > 0 {
		s.tenantSessions[sess.tenant] = n
	} else {
		delete(s.tenantSessions, sess.tenant)
	}
}

// foldStats folds a dead session's queue accounting into the server
// totals.
func (s *Server) foldStats(sess *session) {
	qs := sess.queue.Stats()
	var shardStats obs.Stats
	if sess.shards > 1 {
		// Every caller has already waited on sess.drained, so the
		// consumer is done and reading Stats here is safe; on a sharded
		// backend it also flushes and joins the location workers, which
		// must happen before their budget grant is released.
		shardStats = sess.detector.Stats()
		s.shardWorkersLive.Add(-int64(sess.shards))
	}
	s.mu.Lock()
	s.retired.Producers++
	s.retired.EventsBuffered += qs.Pushed
	s.retired.ProducerStalls += qs.Stalls
	if qs.MaxDepth > s.retired.MaxQueueDepth {
		s.retired.MaxQueueDepth = qs.MaxDepth
	}
	if sess.shards > 1 {
		s.retired.CrossShardHandoffs += shardStats.CrossShardHandoffs
		s.retired.ShardStalls += shardStats.ShardStalls
		if shardStats.ShardEventsMax > s.retired.ShardEventsMax {
			s.retired.ShardEventsMax = shardStats.ShardEventsMax
		}
	}
	s.mu.Unlock()
}

// acquireShards reserves a shard-worker grant for a new session under
// the global budget. It returns 0 (serial detection) when sharding is
// off, the engine cannot shard, or the budget has no room for the full
// grant — a partial grant would change the verdict-affecting shard
// count mid-fleet for no throughput win on an oversubscribed host.
func (s *Server) acquireShards(eng race2d.Engine) int {
	n := s.cfg.Shards
	if n <= 1 || eng != race2d.Engine2D {
		return 0
	}
	for {
		live := s.shardWorkersLive.Load()
		if live+int64(n) > int64(s.cfg.ShardBudget) {
			s.shardFallbacks.Add(1)
			return 0
		}
		if s.shardWorkersLive.CompareAndSwap(live, live+int64(n)) {
			s.shardSessions.Add(1)
			return n
		}
	}
}

// refuse answers a connection that failed the handshake with a typed
// wire error and counts the refusal.
func (s *Server) refuse(conn net.Conn, err error) {
	s.handshakeRefusals.Add(1)
	s.logf("handshake refused from %v: %v", conn.RemoteAddr(), err)
	conn.SetWriteDeadline(time.Now().Add(drainGrace))
	wire.WriteFrame(conn, wire.FrameError, []byte(wire.HandshakeRefusedPrefix+err.Error()))
}

// handshake reads the magic and opening frame off a fresh connection
// and negotiates the protocol version. A session opens with FrameHello,
// decoded into the returned wire.Hello; a replication source opens with
// FrameReplHello, whose raw payload is returned instead (non-nil) for
// the replica set to verify — replication shares the listener, so the
// split happens here, on the first frame's type.
func (s *Server) handshake(conn net.Conn) (int, wire.Hello, []byte, error) {
	var hello wire.Hello
	version, err := wire.ReadMagicVersion(conn)
	if err != nil {
		return 0, hello, nil, err
	}
	if version > s.cfg.MaxVersion {
		// Refuse with the documented version error; a newer client
		// recognizes it in the refusal text and downgrades.
		return 0, hello, nil, fmt.Errorf("%w: version %d, speak %d..%d",
			wire.ErrVersion, version, wire.V1, s.cfg.MaxVersion)
	}
	ft, payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		return 0, hello, nil, fmt.Errorf("raced: reading hello: %w", err)
	}
	if ft == wire.FrameReplHello && s.cfg.Replicas != nil {
		return version, hello, payload, nil
	}
	if ft != wire.FrameHello {
		return 0, hello, nil, fmt.Errorf("raced: expected hello frame, got %v", ft)
	}
	switch {
	case version >= wire.V3:
		hello, err = wire.DecodeHelloV3(payload)
	case version >= wire.V2:
		hello, err = wire.DecodeHelloV2(payload)
	default:
		hello, err = wire.DecodeHello(payload)
	}
	if err != nil {
		return 0, hello, nil, fmt.Errorf("raced: malformed hello: %w", err)
	}
	return version, hello, nil, nil
}

// handle runs one connection from accept to close: handshake, then
// either a fresh session, a resume of a suspended one, an inbound
// replication stream, or a refusal.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	version, hello, replHello, err := s.handshake(conn)
	if err != nil {
		if errors.Is(err, wire.ErrEmptyHandshake) {
			// A connect immediately closed is a TCP health probe (load
			// balancers, cluster gateways without a metrics port), not a
			// client that garbled its handshake: close silently instead
			// of polluting the refusal counter and the log.
			return
		}
		s.refuse(conn, err)
		return
	}
	if replHello != nil {
		// A replication source, not a client. The replica set owns the
		// stream from here: credential check, welcome-at-position,
		// chain-verified applies. Sessions and replication multiplex on
		// one listener so a follower needs no extra port.
		if err := s.cfg.Replicas.Serve(conn, s.cfg.ReplKey, replHello); err != nil &&
			!errors.Is(err, io.EOF) {
			s.logf("replication from %v: %v", conn.RemoteAddr(), err)
		}
		return
	}
	tenant, err := s.authenticate(version, hello)
	if err != nil {
		// Auth refusals ride the handshake-refusal prefix like every
		// other pre-session refusal, but carry the ErrAuth text, which
		// clients classify as terminal: resending the same credential
		// cannot succeed.
		s.sessionsRejected.Add(1)
		s.logf("auth refused from %v: %v", conn.RemoteAddr(), err)
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(conn, wire.FrameError, []byte(wire.HandshakeRefusedPrefix+err.Error()))
		return
	}
	if version >= wire.V2 && hello.Token != 0 {
		s.resume(conn, version, hello, tenant)
		return
	}

	engineName := hello.Engine
	if engineName == "" {
		engineName = race2d.Engine2D.String()
	}
	eng, err := race2d.ParseEngine(engineName)
	if err != nil {
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(conn, wire.FrameError, []byte(err.Error()))
		return
	}
	sess, err := s.admit(conn, version, hello, tenant)
	if err != nil {
		s.sessionsRejected.Add(1)
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		msg := err.Error()
		if errors.Is(err, errDraining) || errors.Is(err, wire.ErrQuota) {
			// Quota refusals share the prefix but, like auth, carry a
			// text clients classify as terminal.
			msg = wire.HandshakeRefusedPrefix + msg
		}
		wire.WriteFrame(conn, wire.FrameError, []byte(msg))
		return
	}
	sess.shards = s.acquireShards(eng)
	sess.startConsumer(eng)
	s.logf("session %d: open (v%d engine=%s batch=%d shards=%d) from %v",
		sess.id, version, eng, hello.BatchSize, sess.shards, conn.RemoteAddr())
	sess.serve(conn)
}

// resume hands a reconnecting v2+ client back its suspended session (or
// its persisted Report, if the session already finished — served from
// the store, so it survives a server restart).
func (s *Server) resume(conn net.Conn, version int, hello wire.Hello, tenant string) {
	rec, err := s.store.Get(hello.Token)
	if err != nil && !errors.Is(err, store.ErrTampered) && s.cfg.Replicas != nil {
		// The primary store does not know the token, but a replica this
		// follower hosts might: a client whose home backend died fetches
		// its report from any follower of that backend. Tenant ownership
		// is enforced below exactly as for a home-store hit.
		if rrec, rerr := s.cfg.Replicas.Get(hello.Token); rerr == nil {
			rec, err = rrec, nil
		}
	}
	switch {
	case err == nil:
		if s.tenantsEnabled() && rec.Tenant != tenant {
			// The token exists but belongs to another tenant: refuse as
			// an auth failure, not a not-found — and certainly not with
			// the other tenant's report.
			s.authFailures.Add(1)
			s.logf("resume refused from %v: token crosses tenants", conn.RemoteAddr())
			conn.SetWriteDeadline(time.Now().Add(drainGrace))
			wire.WriteFrame(conn, wire.FrameError, []byte(wire.HandshakeRefusedPrefix+wire.ErrAuth.Error()))
			return
		}
		s.resumes.Add(1)
		s.logf("session %d: resume of finished session, re-sending report", rec.Session)
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		welcome := wire.Welcome{Session: rec.Session, Token: hello.Token, NextSeq: rec.NextSeq}
		wpayload := wire.EncodeWelcomeV2(welcome)
		if version >= wire.V3 {
			// The resumed stream is done — no more event frames — so no
			// capability needs granting, but the client decodes the
			// Welcome in the shape of the version it reconnected with.
			wpayload = wire.EncodeWelcomeV3(welcome)
		}
		if wire.WriteFrame(conn, wire.FrameWelcome, wpayload) == nil {
			wire.WriteFrame(conn, wire.FrameReport, wire.EncodeReport(rec.Flags, rec.JSON))
		}
		return
	case errors.Is(err, store.ErrTampered):
		// The store cannot prove anything about this token: the log is
		// damaged at or before where the record would live. Refuse with
		// the typed tamper text — a terminal, diagnosable error — rather
		// than a misleading "unknown token" or a crash.
		s.logf("resume refused from %v: %v", conn.RemoteAddr(), err)
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(conn, wire.FrameError, []byte(err.Error()))
		return
	}
	s.mu.Lock()
	var target *session
	for _, sess := range s.sessions {
		if sess.token == hello.Token && sess.state == stateSuspended && sess.tenant == tenant {
			target = sess
			break
		}
	}
	if target != nil {
		// Adopt: the suspended serve loop has fully exited (suspension is
		// its last act, under this lock), so the session is ours. The
		// session re-pins to the version and capabilities of the new
		// handshake (intersected with what was granted before), so a
		// client that reconnected at a lower version gets a coherently
		// shaped Welcome and no stale capability.
		target.state = stateRunning
		target.conn = conn
		target.version = version
		if version >= wire.V3 {
			target.caps &= hello.Caps
		} else {
			target.caps = 0
		}
		s.mu.Unlock()
		s.resumes.Add(1)
		target.lastActive.Store(time.Now().UnixNano())
		s.logf("session %d: resumed from %v (next seq %d)", target.id, conn.RemoteAddr(), target.nextSeq)
		target.serve(conn)
		return
	}
	s.mu.Unlock()
	s.logf("resume refused from %v: unknown token", conn.RemoteAddr())
	conn.SetWriteDeadline(time.Now().Add(drainGrace))
	wire.WriteFrame(conn, wire.FrameError, []byte(wire.ErrUnknownResume.Error()))
}

// Draining reports whether the server has stopped accepting fresh
// sessions (Shutdown or Close has begun). Cluster gateways poll this —
// via /healthz, which turns it into a 503 "draining" — to stop routing
// new sessions to a backend that is on its way out while its live
// sessions finish their drain reports.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Live returns the number of currently live sessions.
func (s *Server) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats snapshots the server's wire-level and backpressure counters
// (live sessions included).
func (s *Server) Stats() obs.Stats {
	s.mu.Lock()
	st := s.retired
	for _, sess := range s.sessions {
		qs := sess.queue.Stats()
		st.Producers++
		st.EventsBuffered += qs.Pushed
		st.ProducerStalls += qs.Stalls
		if qs.MaxDepth > st.MaxQueueDepth {
			st.MaxQueueDepth = qs.MaxDepth
		}
	}
	s.mu.Unlock()
	st.Sessions = s.sessionsTotal.Load()
	st.SessionsRejected = s.sessionsRejected.Load()
	st.Evictions = s.evictions.Load()
	st.Frames = s.frames.Load()
	st.WireBytes = s.wireBytes.Load()
	st.HandshakeRefusals = s.handshakeRefusals.Load()
	st.Resumes = s.resumes.Load()
	st.DupsDropped = s.dupsDropped.Load()
	st.WireBlocks = s.blocks.Load()
	st.WireBytesBlocks = s.wireBytesBlocks.Load()
	st.WireBytesRaw = s.wireBytesRaw.Load()
	if s.cfg.Shards > 1 {
		st.Shards = uint64(s.cfg.Shards)
	}
	return st
}

// Handler returns the observability endpoints: /healthz (liveness plus
// a live-session count) and /metrics (Prometheus text exposition of the
// Stats counters).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if s.Draining() {
			// 503 tells probers (and cluster gateways) to take this
			// backend out of rotation; the body says why.
			status = "draining"
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.Header().Set("Content-Type", "application/json")
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status":        status,
			"live_sessions": s.Live(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "raced_sessions_total %d\n", st.Sessions)
		fmt.Fprintf(w, "raced_sessions_live %d\n", s.Live())
		draining := 0
		if s.Draining() {
			draining = 1
		}
		fmt.Fprintf(w, "raced_draining %d\n", draining)
		fmt.Fprintf(w, "raced_sessions_rejected_total %d\n", st.SessionsRejected)
		fmt.Fprintf(w, "raced_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "raced_frames_total %d\n", st.Frames)
		fmt.Fprintf(w, "raced_wire_bytes_total %d\n", st.WireBytes)
		fmt.Fprintf(w, "raced_events_buffered_total %d\n", st.EventsBuffered)
		fmt.Fprintf(w, "raced_producer_stalls_total %d\n", st.ProducerStalls)
		fmt.Fprintf(w, "raced_queue_depth_max %d\n", st.MaxQueueDepth)
		fmt.Fprintf(w, "raced_handshake_refusals_total %d\n", st.HandshakeRefusals)
		fmt.Fprintf(w, "raced_resumes_total %d\n", st.Resumes)
		fmt.Fprintf(w, "raced_dups_dropped_total %d\n", st.DupsDropped)
		fmt.Fprintf(w, "raced_wire_blocks_total %d\n", st.WireBlocks)
		fmt.Fprintf(w, "raced_wire_bytes_blocks_total %d\n", st.WireBytesBlocks)
		fmt.Fprintf(w, "raced_wire_bytes_raw_total %d\n", st.WireBytesRaw)
		fmt.Fprintf(w, "raced_compress_ratio %g\n", st.CompressRatio())
		fmt.Fprintf(w, "raced_shard_workers_live %d\n", s.shardWorkersLive.Load())
		fmt.Fprintf(w, "raced_shard_workers_budget %d\n", s.cfg.ShardBudget)
		fmt.Fprintf(w, "raced_shard_sessions_total %d\n", s.shardSessions.Load())
		fmt.Fprintf(w, "raced_shard_fallbacks_total %d\n", s.shardFallbacks.Load())
		fmt.Fprintf(w, "raced_shard_handoffs_total %d\n", st.CrossShardHandoffs)
		fmt.Fprintf(w, "raced_shard_stalls_total %d\n", st.ShardStalls)
		fmt.Fprintf(w, "raced_auth_failures_total %d\n", s.authFailures.Load())
		fmt.Fprintf(w, "raced_quota_refusals_total %d\n", s.quotaRefusals.Load())

		ss := s.store.Stats()
		fmt.Fprintf(w, "raced_store_records %d\n", ss.Records)
		fmt.Fprintf(w, "raced_store_bytes %d\n", ss.Bytes)
		fmt.Fprintf(w, "raced_store_segments %d\n", ss.Segments)
		fmt.Fprintf(w, "raced_store_puts_total %d\n", ss.Puts)
		// The server-side counter, not ss.PutFailures: the store counts
		// its own refusals too, and summing would double-count every
		// failed persist the server observed.
		fmt.Fprintf(w, "raced_store_put_failures_total %d\n", s.storePutErrors.Load())
		fmt.Fprintf(w, "raced_store_gets_total %d\n", ss.Gets)
		fmt.Fprintf(w, "raced_store_hits_total %d\n", ss.Hits)
		fmt.Fprintf(w, "raced_store_compactions_total %d\n", ss.Compactions)
		fmt.Fprintf(w, "raced_store_segments_pruned_total %d\n", ss.SegmentsPruned)
		fmt.Fprintf(w, "raced_store_verify_failures_total %d\n", ss.VerifyFailures)

		// Per-tenant gauges, sorted so the exposition is stable. Tenants
		// appear once they have a live session or stored bytes; the
		// anonymous tenant of an open server is labeled "".
		s.mu.Lock()
		tenants := make(map[string]bool, len(s.tenantSessions))
		live := make(map[string]int, len(s.tenantSessions))
		for t, n := range s.tenantSessions {
			tenants[t], live[t] = true, n
		}
		s.mu.Unlock()
		for t := range ss.TenantBytes {
			tenants[t] = true
		}
		names := make([]string, 0, len(tenants))
		for t := range tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Fprintf(w, "raced_tenant_sessions_live{tenant=%q} %d\n", t, live[t])
			fmt.Fprintf(w, "raced_tenant_store_bytes{tenant=%q} %d\n", t, ss.TenantBytes[t])
			fmt.Fprintf(w, "raced_tenant_store_records{tenant=%q} %d\n", t, ss.TenantRecords[t])
		}

		// Live-reconfiguration counters and per-tenant auth refusals
		// (cardinality bounded: only names in the live table are counted).
		fmt.Fprintf(w, "raced_tenant_reloads_total %d\n", s.tenantReloads.Load())
		fmt.Fprintf(w, "raced_tenant_revoked_sessions_total %d\n", s.tenantRevocations.Load())
		s.tmu.RLock()
		refusals := make(map[string]uint64, len(s.tenantAuthRefusals))
		for t, n := range s.tenantAuthRefusals {
			refusals[t] = n
		}
		s.tmu.RUnlock()
		rnames := make([]string, 0, len(refusals))
		for t := range refusals {
			rnames = append(rnames, t)
		}
		sort.Strings(rnames)
		for _, t := range rnames {
			fmt.Fprintf(w, "raced_tenant_auth_refusals_total{tenant=%q} %d\n", t, refusals[t])
		}

		// Replication source side: present when the store replicates
		// outward (detected by the Source upcast, so the server needs no
		// store-type knowledge).
		if src, ok := s.store.(interface{ Source() *repl.Source }); ok {
			rst := src.Source().Stats()
			fmt.Fprintf(w, "raced_repl_followers %d\n", rst.Followers)
			fmt.Fprintf(w, "raced_repl_followers_connected %d\n", rst.Connected)
			fmt.Fprintf(w, "raced_repl_followers_degraded %d\n", rst.Degraded)
			fmt.Fprintf(w, "raced_repl_followers_failed %d\n", rst.Failed)
			fmt.Fprintf(w, "raced_repl_records_sent_total %d\n", rst.RecordsSent)
			fmt.Fprintf(w, "raced_repl_acks_total %d\n", rst.AcksReceived)
			fmt.Fprintf(w, "raced_repl_reconnects_total %d\n", rst.Reconnects)
			fmt.Fprintf(w, "raced_repl_degraded_events_total %d\n", rst.DegradedEvents)
			addrs := make([]string, 0, len(rst.Acked))
			for a := range rst.Acked {
				addrs = append(addrs, a)
			}
			sort.Strings(addrs)
			for _, a := range addrs {
				fmt.Fprintf(w, "raced_repl_follower_acked{follower=%q} %d\n", a, rst.Acked[a])
			}
		}
		// Follower side: the replica logs this backend hosts for others.
		if s.cfg.Replicas != nil {
			fst := s.cfg.Replicas.Stats()
			fmt.Fprintf(w, "raced_replica_sources %d\n", fst.Sources)
			fmt.Fprintf(w, "raced_replica_connections %d\n", fst.Connections)
			fmt.Fprintf(w, "raced_replica_streams_total %d\n", fst.Served)
			fmt.Fprintf(w, "raced_replica_records_total %d\n", fst.Records)
			fmt.Fprintf(w, "raced_replica_refusals_total %d\n", fst.Refused)
			srcs := make([]string, 0, len(fst.Positions))
			for id := range fst.Positions {
				srcs = append(srcs, id)
			}
			sort.Strings(srcs)
			for _, id := range srcs {
				fmt.Fprintf(w, "raced_replica_position{source=%q} %d\n", id, fst.Positions[id])
			}
		}
	})

	// Admin surface: authenticated tenant-table reads and swaps, and a
	// per-tenant report listing. Disabled (403 on everything) unless the
	// server was started with an AdminKey; the key rides the standard
	// Bearer scheme and is compared constant-time.
	admin := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			const scheme = "Bearer "
			auth := r.Header.Get("Authorization")
			if s.cfg.AdminKey == "" || !strings.HasPrefix(auth, scheme) ||
				subtle.ConstantTimeCompare([]byte(strings.TrimPrefix(auth, scheme)), []byte(s.cfg.AdminKey)) != 1 {
				http.Error(w, "admin: forbidden", http.StatusForbidden)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/admin/tenants", admin(s.handleAdminTenants))
	mux.HandleFunc("/admin/reports", admin(s.handleAdminReports))
	return mux
}

// handleAdminTenants serves the live tenant table. GET returns the
// table's names and quotas — keys are write-only and never echoed. PUT
// replaces the whole table from a body in the -tenant-keys-file format
// (see cliflags.ParseTenantKeysFile); an empty body turns auth off.
// Rotations and revocations take effect on the next handshake, exactly
// as SetTenants documents.
func (s *Server) handleAdminTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		type tenantInfo struct {
			MaxSessions   int   `json:"max_sessions"`
			MaxStoreBytes int64 `json:"max_store_bytes"`
			LiveSessions  int   `json:"live_sessions"`
		}
		table := s.Tenants()
		s.mu.Lock()
		live := make(map[string]int, len(s.tenantSessions))
		for t, n := range s.tenantSessions {
			live[t] = n
		}
		s.mu.Unlock()
		out := make(map[string]tenantInfo, len(table))
		for name, t := range table {
			out[name] = tenantInfo{
				MaxSessions:   t.MaxSessions,
				MaxStoreBytes: t.MaxStoreBytes,
				LiveSessions:  live[name],
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"enabled": len(table) > 0, "tenants": out})
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "admin: reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		specs, err := cliflags.ParseTenantKeysFile(body)
		if err != nil {
			http.Error(w, "admin: "+err.Error(), http.StatusBadRequest)
			return
		}
		table := make(map[string]Tenant, len(specs))
		for _, sp := range specs {
			table[sp.Name] = Tenant{Key: sp.Key, MaxSessions: sp.MaxSessions, MaxStoreBytes: sp.MaxStoreBytes}
		}
		s.SetTenants(table)
		s.logf("admin: tenant table replaced (%d tenants)", len(table))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"enabled": len(table) > 0, "count": len(table)})
	default:
		w.Header().Set("Allow", "GET, PUT")
		http.Error(w, "admin: method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleAdminReports lists a tenant's persisted reports
// (GET /admin/reports?tenant=X), or exports one report's stored JSON
// verbatim (&token=<hex> — the bytes a resuming client would receive).
func (s *Server) handleAdminReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "admin: method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	if tok := r.URL.Query().Get("token"); tok != "" {
		token, err := strconv.ParseUint(tok, 16, 64)
		if err != nil {
			http.Error(w, "admin: bad token (want hex)", http.StatusBadRequest)
			return
		}
		rec, err := s.store.Get(token)
		if err != nil || rec.Tenant != tenant {
			// Absent, expired, tampered-at, or another tenant's: one
			// answer for all of them, like the wire surface.
			http.Error(w, "admin: report not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rec.JSON)
		return
	}
	recs, err := s.store.List()
	if err != nil {
		http.Error(w, "admin: listing store: "+err.Error(), http.StatusInternalServerError)
		return
	}
	type reportInfo struct {
		Token   string `json:"token"`
		Session uint64 `json:"session"`
		Flags   uint64 `json:"flags"`
	}
	out := []reportInfo{}
	for _, rec := range recs {
		if rec.Tenant != tenant {
			continue
		}
		out = append(out, reportInfo{
			Token:   strconv.FormatUint(rec.Token, 16),
			Session: rec.Session,
			Flags:   rec.Flags,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"tenant": tenant, "reports": out})
}

// ---- per-session pipeline ----------------------------------------------

type sessState int

const (
	stateRunning   sessState = iota // a connection is attached and serving
	stateSuspended                  // v2: connection lost, awaiting resume
	stateDone                       // finished or torn down
)

type session struct {
	id      uint64
	token   uint64
	version int
	caps    uint64 // granted v3 capabilities (0 below v3)
	hello   wire.Hello
	tenant  string // authenticated tenant ("" on an open server)
	srv     *Server

	queue    *fj.EventQueue
	drained  chan struct{} // closed when the consumer finished feeding the engine
	detector race2d.StreamDetector
	shards   int // granted shard workers (0 = serial detection)

	lastActive atomic.Int64 // unix nanos of the last frame
	draining   atomic.Bool  // shutdown: stop reading, report the prefix
	evicting   atomic.Bool  // idle: stop reading, refuse with an error

	// Guarded by srv.mu. nextSeq is only touched by the (single) serving
	// goroutine while running; it is published under the lock at suspend
	// and read back under it at adoption, which orders the handoff.
	state          sessState
	conn           net.Conn // nil while suspended
	nextSeq        uint64   // next expected v2 events sequence
	resumeDeadline time.Time
	// revokeDeadline, when non-zero, marks this session's tenant as
	// removed from the live table: the janitor evicts the session once
	// the grace window passes. Guarded by srv.mu like state.
	revokeDeadline time.Time
}

// startConsumer launches the queue's single reader — the only goroutine
// that touches the engine until drained is closed. It outlives any one
// connection: a suspended session keeps detecting what it buffered.
func (sess *session) startConsumer(eng race2d.Engine) {
	if sess.shards > 1 {
		d, err := race2d.NewStreamDetector(
			race2d.WithEngine(eng),
			race2d.WithShards(sess.shards),
			race2d.WithQueueCapacity(sess.srv.cfg.QueueCapacity))
		if err != nil {
			// Cannot happen for a granted Engine2D session; keep the
			// session alive serially rather than dropping it.
			sess.srv.logf("session %d: sharded detector: %v", sess.id, err)
			sess.srv.shardWorkersLive.Add(-int64(sess.shards))
			sess.shards = 0
			d = race2d.NewEngineSink(eng)
		}
		sess.detector = d
	} else {
		sess.detector = race2d.NewEngineSink(eng)
	}
	go func() {
		defer close(sess.drained)
		var sink race2d.Sink = sess.detector
		var buf *race2d.EventBuffer
		if sess.hello.BatchSize > 0 {
			buf = race2d.NewEventBuffer(sess.detector, sess.hello.BatchSize)
			sink = buf
		}
		for {
			slab, ok := sess.queue.Pop()
			if !ok {
				break
			}
			// Per-event delivery: with BatchSize == 0 the engine sees the
			// exact call sequence of an unbuffered local run, so its Stats
			// (batch histogram included) match byte for byte.
			for _, e := range slab {
				sink.Event(e)
			}
			sess.queue.Recycle(slab)
		}
		if buf != nil {
			buf.Flush()
		}
	}()
}

// beginDrain asks the session's reader to stop. The flag is set before
// the read deadline so the reader, once unblocked, always observes why.
// Called under srv.mu (never for suspended sessions), possibly from the
// janitor and Shutdown concurrently.
func (sess *session) beginDrain(evict bool) {
	if evict {
		sess.evicting.Store(true)
	} else {
		sess.draining.Store(true)
	}
	if sess.conn != nil {
		sess.conn.SetReadDeadline(time.Now())
	}
}

// interrupted reports whether a read error is the deadline poke from
// beginDrain rather than a real peer failure.
func (sess *session) interrupted(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded) &&
		(sess.draining.Load() || sess.evicting.Load())
}

// suspend parks a v2 session whose connection died, keeping its
// pipeline alive for ResumeWindow. Reports whether the session was
// suspended; false means the server is closing and the caller must
// tear down instead.
func (sess *session) suspend(nextSeq uint64, cause error) bool {
	srv := sess.srv
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return false
	}
	sess.state = stateSuspended
	sess.conn = nil
	sess.nextSeq = nextSeq
	sess.resumeDeadline = time.Now().Add(srv.cfg.ResumeWindow)
	srv.mu.Unlock()
	srv.logf("session %d: suspended (%v), resumable for %v at seq %d",
		sess.id, cause, srv.cfg.ResumeWindow, nextSeq)
	return true
}

// serve runs the frame loop for one connection attached to this
// session. For a v2 session it may be called again later with the next
// connection after a suspend/resume cycle.
func (sess *session) serve(conn net.Conn) {
	srv := sess.srv

	srv.mu.Lock()
	nextSeq := sess.nextSeq
	srv.mu.Unlock()

	welcome := wire.Welcome{Session: sess.id}
	var wpayload []byte
	switch {
	case sess.version >= wire.V3:
		welcome.Token, welcome.NextSeq, welcome.Caps = sess.token, nextSeq, sess.caps
		wpayload = wire.EncodeWelcomeV3(welcome)
	case sess.version >= wire.V2:
		welcome.Token, welcome.NextSeq = sess.token, nextSeq
		wpayload = wire.EncodeWelcomeV2(welcome)
	default:
		wpayload = wire.EncodeWelcome(welcome)
	}
	conn.SetWriteDeadline(time.Now().Add(drainGrace))
	if err := wire.WriteFrame(conn, wire.FrameWelcome, wpayload); err != nil {
		srv.logf("session %d: welcome: %v", sess.id, err)
		if sess.version >= wire.V2 && sess.suspend(nextSeq, err) {
			return
		}
		sess.teardown(conn, nil)
		return
	}

	finished := false
	protoErr := false // the peer broke the protocol; do not suspend
	var readErr error
	var blockDec wire.BlockDecoder // per-connection; blocks are self-contained
	scratch := make([]byte, 0, 64<<10)
frames:
	for {
		ft, payload, err := wire.ReadFrame(conn, scratch)
		if err != nil {
			if !sess.interrupted(err) {
				readErr = err
			}
			break
		}
		if cap(payload) > cap(scratch) {
			scratch = payload[:0]
		}
		sess.lastActive.Store(time.Now().UnixNano())
		switch ft {
		case wire.FrameEvents, wire.FrameEventsBlock:
			srv.frames.Add(1)
			srv.wireBytes.Add(uint64(len(payload)))
			var (
				seq  uint64
				slab []fj.Event
				err  error
			)
			switch {
			case ft == wire.FrameEventsBlock:
				if sess.version < wire.V3 || sess.caps&wire.CapCompress == 0 {
					readErr = errors.New("raced: compressed block on a session without the compress capability")
					protoErr = true
					break frames
				}
				var rawLen int
				seq, slab, rawLen, err = blockDec.DecodeBlockInto(sess.queue.NewSlab(), payload)
				if err == nil {
					srv.blocks.Add(1)
					srv.wireBytesBlocks.Add(uint64(len(payload)))
					srv.wireBytesRaw.Add(uint64(rawLen))
				}
			case sess.version >= wire.V2:
				seq, slab, err = wire.DecodeEventsSeq(sess.queue.NewSlab(), payload)
			default:
				// v1: unsequenced, unacknowledged.
				slab, err = wire.DecodeEvents(sess.queue.NewSlab(), payload)
				if err != nil {
					readErr, protoErr = err, true
					break frames
				}
				if err := sess.queue.Push(slab); err != nil {
					readErr = err
					break frames
				}
				continue
			}
			if err != nil {
				readErr, protoErr = err, true
				break frames
			}
			switch {
			case seq < nextSeq:
				// Duplicate of an already-ingested batch (a resend
				// raced an ack): the engine must see it exactly once.
				srv.dupsDropped.Add(1)
			case seq == nextSeq:
				// Push blocks while the queue is full: backpressure
				// reaches the client through TCP flow control.
				if err := sess.queue.Push(slab); err != nil {
					readErr = err
					break frames
				}
				nextSeq++
			default:
				readErr = fmt.Errorf("raced: sequence gap: got %d, want %d", seq, nextSeq)
				protoErr = true
				break frames
			}
			if err := sess.writeAck(conn, nextSeq-1); err != nil {
				readErr = err
				break frames
			}
		case wire.FrameHeartbeat:
			if sess.version < wire.V2 {
				readErr = fmt.Errorf("server: unexpected %v frame mid-stream", ft)
				protoErr = true
				break frames
			}
			// Keepalive: answer with the current ack so the client's
			// dead-peer detector sees a live server.
			if err := sess.writeAck(conn, nextSeq-1); err != nil {
				readErr = err
				break frames
			}
		case wire.FrameFinish:
			finished = true
			break frames
		default:
			readErr = fmt.Errorf("server: unexpected %v frame mid-stream", ft)
			protoErr = true
			break frames
		}
	}

	// A dead v2 transport suspends the session — everything else tears
	// it down (after the engine consumed what was buffered).
	if readErr != nil && !finished && !protoErr && sess.version >= wire.V2 &&
		!sess.evicting.Load() && !sess.draining.Load() {
		if sess.suspend(nextSeq, readErr) {
			return
		}
	}
	sess.finish(conn, nextSeq, finished, readErr)
}

// writeAck sends an Ack frame naming the highest contiguously ingested
// sequence (0 = nothing yet).
func (sess *session) writeAck(conn net.Conn, seq uint64) error {
	conn.SetWriteDeadline(time.Now().Add(drainGrace))
	return wire.WriteFrame(conn, wire.FrameAck, wire.EncodeAck(seq))
}

// teardown closes the pipeline, lets the engine drain, and retires the
// session, optionally sending errPayload as a final Error frame.
func (sess *session) teardown(conn net.Conn, errPayload []byte) {
	sess.queue.Close()
	<-sess.drained
	if errPayload != nil {
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(conn, wire.FrameError, errPayload)
	}
	sess.srv.retire(sess)
}

// finish resolves the session on its terminal connection: eviction
// notice, error report, or the engine's Report (flagged partial when
// the stream was cut short by a drain).
func (sess *session) finish(conn net.Conn, nextSeq uint64, finished bool, readErr error) {
	srv := sess.srv

	if sess.evicting.Load() && !finished {
		srv.evictions.Add(1)
		srv.logf("session %d: evicted (idle)", sess.id)
		sess.teardown(conn, []byte("raced: session evicted (idle)"))
		return
	}
	if readErr != nil {
		srv.logf("session %d: %v", sess.id, readErr)
		sess.teardown(conn, []byte(readErr.Error()))
		return
	}

	sess.queue.Close()
	<-sess.drained

	rep := sess.detector.Report()
	body, err := json.Marshal(rep)
	if err != nil {
		srv.logf("session %d: marshal report: %v", sess.id, err)
		sess.srv.retire(sess)
		return
	}
	var flags uint64
	if !finished {
		flags |= wire.FlagPartial
	}
	payload := wire.EncodeReport(flags, body)

	// Persist the verdict of a cleanly finished v2+ session before
	// trying to deliver it: if the connection dies mid-Report — or the
	// whole process dies — the client resumes and collects the identical
	// bytes from the store. Delivery is never blocked on a store
	// failure: the client holding the connection still gets its Report,
	// and the failure is logged and counted.
	if finished && sess.version >= wire.V2 {
		err := srv.store.Put(store.Record{
			Token:   sess.token,
			Session: sess.id,
			NextSeq: nextSeq,
			Flags:   flags,
			Tenant:  sess.tenant,
			JSON:    body,
		})
		if err != nil {
			srv.storePutErrors.Add(1)
			srv.logf("session %d: persist report: %v", sess.id, err)
		}
	}
	sess.srv.retire(sess)

	conn.SetWriteDeadline(time.Now().Add(drainGrace))
	if err := wire.WriteFrame(conn, wire.FrameReport, payload); err != nil {
		srv.logf("session %d: report: %v", sess.id, err)
		return
	}
	if !finished {
		// Drain: the client may still be mid-write (possibly blocked on
		// TCP backpressure). Half-close our side so it sees the stream
		// end, then discard its remaining output so its blocked writes
		// complete and it can read the partial report.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		conn.SetReadDeadline(time.Now().Add(drainGrace))
		io.Copy(io.Discard, conn)
	}
	srv.logf("session %d: closed (finished=%v races=%d)", sess.id, finished, rep.Count)
}
