// Package server is the raced session server: it accepts concurrent
// wire-protocol sessions (internal/wire), runs one detector engine per
// session, and answers each stream with the engine's Report.
//
// Every session is its own bounded pipeline. The connection reader
// decodes event frames and pushes slabs into a per-session fj.EventQueue
// — the same bounded SPSC machinery the goroutine frontend uses — and a
// consumer goroutine drains the queue into the engine. The queue's
// capacity is the session's entire buffering budget: a client that
// outruns its detector fills the queue, the reader stops reading, TCP
// flow control pushes back to the sender, and server memory stays
// bounded at (live sessions) × (queue capacity) events no matter how
// fast clients write.
//
// Admission control caps live sessions (extra connections are refused
// with an Error frame, not queued), a janitor evicts sessions idle past
// IdleTimeout, and Shutdown drains gracefully: every open session stops
// reading, finishes detecting what it already buffered, and sends a
// Report frame flagged Partial — a coherent verdict for the prefix of
// the stream the detector consumed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fj"
	"repro/internal/obs"
	"repro/internal/wire"

	race2d "repro"
)

// Config tunes a Server. The zero value is usable: 64 sessions, the
// default queue capacity, no idle eviction.
type Config struct {
	// MaxSessions caps concurrently live sessions; connections beyond
	// the cap are refused with an Error frame. <= 0 means 64.
	MaxSessions int
	// QueueCapacity bounds each session's event queue, in events
	// (fj.DefaultQueueCapacity when <= 0). This is the per-session
	// memory budget for buffered, not-yet-detected events.
	QueueCapacity int
	// IdleTimeout evicts sessions that deliver no frame for this long.
	// Zero disables eviction.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
}

// DefaultMaxSessions is the live-session cap used when Config leaves
// MaxSessions unset.
const DefaultMaxSessions = 64

// drainGrace bounds how long a draining or finishing session waits for
// the peer while discarding its remaining input or writing the report.
const drainGrace = 2 * time.Second

// Server is a raced session server. Create with New, run with Serve,
// stop with Shutdown (graceful) or Close (abrupt).
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup

	// Wire-level counters (atomic: bumped on every frame).
	sessionsTotal    atomic.Uint64
	sessionsRejected atomic.Uint64
	evictions        atomic.Uint64
	frames           atomic.Uint64
	wireBytes        atomic.Uint64

	// Queue backpressure accounting folded in as sessions retire.
	retired obs.Stats // guarded by mu
}

// New returns an idle Server.
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	return &Server{
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		done:     make(chan struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts sessions on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean shutdown the error is
// net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	if s.cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting, asks every live session to drain — each
// detects what it already buffered and sends a Partial report — and
// waits for them to finish, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginClose()
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.beginDrain(false)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close abruptly terminates the server and every live session.
func (s *Server) Close() error {
	s.beginClose()
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) beginClose() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		if s.ln != nil {
			s.ln.Close()
		}
	}
	s.mu.Unlock()
}

// janitor evicts sessions that have been idle past IdleTimeout.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.lastActive.Load() < cutoff {
				sess.beginDrain(true)
			}
		}
		s.mu.Unlock()
	}
}

// admit registers a new session, or refuses it at the cap.
func (s *Server) admit(conn net.Conn) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.sessions) >= s.cfg.MaxSessions {
		return nil, false
	}
	s.nextID++
	sess := &session{
		id:      s.nextID,
		srv:     s,
		conn:    conn,
		queue:   fj.NewEventQueue(s.cfg.QueueCapacity, 0),
		drained: make(chan struct{}),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	s.sessions[sess.id] = sess
	s.sessionsTotal.Add(1)
	return sess, true
}

// release retires a finished session, folding its queue accounting into
// the server totals.
func (s *Server) release(sess *session) {
	qs := sess.queue.Stats()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.retired.Producers++
	s.retired.EventsBuffered += qs.Pushed
	s.retired.ProducerStalls += qs.Stalls
	if qs.MaxDepth > s.retired.MaxQueueDepth {
		s.retired.MaxQueueDepth = qs.MaxDepth
	}
	s.mu.Unlock()
}

// handle runs one connection's session from accept to close.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sess, ok := s.admit(conn)
	if !ok {
		s.sessionsRejected.Add(1)
		conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(conn, wire.FrameError, []byte("raced: session limit reached"))
		return
	}
	defer s.release(sess)
	sess.run()
}

// Live returns the number of currently live sessions.
func (s *Server) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats snapshots the server's wire-level and backpressure counters
// (live sessions included).
func (s *Server) Stats() obs.Stats {
	s.mu.Lock()
	st := s.retired
	for _, sess := range s.sessions {
		qs := sess.queue.Stats()
		st.Producers++
		st.EventsBuffered += qs.Pushed
		st.ProducerStalls += qs.Stalls
		if qs.MaxDepth > st.MaxQueueDepth {
			st.MaxQueueDepth = qs.MaxDepth
		}
	}
	s.mu.Unlock()
	st.Sessions = s.sessionsTotal.Load()
	st.SessionsRejected = s.sessionsRejected.Load()
	st.Evictions = s.evictions.Load()
	st.Frames = s.frames.Load()
	st.WireBytes = s.wireBytes.Load()
	return st
}

// Handler returns the observability endpoints: /healthz (liveness plus
// a live-session count) and /metrics (Prometheus text exposition of the
// Stats counters).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":        "ok",
			"live_sessions": s.Live(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "raced_sessions_total %d\n", st.Sessions)
		fmt.Fprintf(w, "raced_sessions_live %d\n", s.Live())
		fmt.Fprintf(w, "raced_sessions_rejected_total %d\n", st.SessionsRejected)
		fmt.Fprintf(w, "raced_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "raced_frames_total %d\n", st.Frames)
		fmt.Fprintf(w, "raced_wire_bytes_total %d\n", st.WireBytes)
		fmt.Fprintf(w, "raced_events_buffered_total %d\n", st.EventsBuffered)
		fmt.Fprintf(w, "raced_producer_stalls_total %d\n", st.ProducerStalls)
		fmt.Fprintf(w, "raced_queue_depth_max %d\n", st.MaxQueueDepth)
	})
	return mux
}

// ---- per-session pipeline ----------------------------------------------

type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	queue   *fj.EventQueue
	drained chan struct{} // closed when the consumer finished feeding the engine

	lastActive atomic.Int64 // unix nanos of the last frame
	draining   atomic.Bool  // shutdown: stop reading, report the prefix
	evicting   atomic.Bool  // idle: stop reading, refuse with an error
}

// beginDrain asks the session's reader to stop. The flag is set before
// the read deadline so the reader, once unblocked, always observes why.
// Safe to call multiple times and from the janitor and Shutdown
// concurrently.
func (sess *session) beginDrain(evict bool) {
	if evict {
		sess.evicting.Store(true)
	} else {
		sess.draining.Store(true)
	}
	sess.conn.SetReadDeadline(time.Now())
}

// interrupted reports whether a read error is the deadline poke from
// beginDrain rather than a real peer failure.
func (sess *session) interrupted(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded) &&
		(sess.draining.Load() || sess.evicting.Load())
}

func (sess *session) run() {
	srv := sess.srv
	if err := wire.ReadMagic(sess.conn); err != nil {
		srv.logf("session %d: %v", sess.id, err)
		return
	}
	ft, payload, err := wire.ReadFrame(sess.conn, nil)
	if err != nil || ft != wire.FrameHello {
		srv.logf("session %d: expected hello, got %v (%v)", sess.id, ft, err)
		return
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		srv.logf("session %d: %v", sess.id, err)
		return
	}
	engineName := hello.Engine
	if engineName == "" {
		engineName = race2d.Engine2D.String()
	}
	eng, err := race2d.ParseEngine(engineName)
	if err != nil {
		wire.WriteFrame(sess.conn, wire.FrameError, []byte(err.Error()))
		return
	}
	detector := race2d.NewEngineSink(eng)
	if err := wire.WriteFrame(sess.conn, wire.FrameWelcome, wire.EncodeWelcome(wire.Welcome{Session: sess.id})); err != nil {
		srv.logf("session %d: welcome: %v", sess.id, err)
		return
	}
	srv.logf("session %d: open (engine=%s batch=%d) from %v", sess.id, eng, hello.BatchSize, sess.conn.RemoteAddr())

	// Consumer: the queue's single reader, and the only goroutine that
	// touches the engine until drained is closed.
	go func() {
		defer close(sess.drained)
		var sink race2d.Sink = detector
		var buf *race2d.EventBuffer
		if hello.BatchSize > 0 {
			buf = race2d.NewEventBuffer(detector, hello.BatchSize)
			sink = buf
		}
		for {
			slab, ok := sess.queue.Pop()
			if !ok {
				break
			}
			// Per-event delivery: with BatchSize == 0 the engine sees the
			// exact call sequence of an unbuffered local run, so its Stats
			// (batch histogram included) match byte for byte.
			for _, e := range slab {
				sink.Event(e)
			}
			sess.queue.Recycle(slab)
		}
		if buf != nil {
			buf.Flush()
		}
	}()

	finished := false
	var readErr error
	scratch := make([]byte, 0, 64<<10)
frames:
	for {
		ft, payload, err := wire.ReadFrame(sess.conn, scratch)
		if err != nil {
			if !sess.interrupted(err) {
				readErr = err
			}
			break
		}
		if cap(payload) > cap(scratch) {
			scratch = payload[:0]
		}
		sess.lastActive.Store(time.Now().UnixNano())
		switch ft {
		case wire.FrameEvents:
			slab, err := wire.DecodeEvents(sess.queue.NewSlab(), payload)
			if err != nil {
				readErr = err
				break frames
			}
			srv.frames.Add(1)
			srv.wireBytes.Add(uint64(len(payload)))
			// Push blocks while the queue is full: backpressure reaches
			// the client through TCP flow control.
			if err := sess.queue.Push(slab); err != nil {
				readErr = err
				break frames
			}
		case wire.FrameFinish:
			finished = true
			break frames
		default:
			readErr = fmt.Errorf("server: unexpected %v frame mid-stream", ft)
			break frames
		}
	}

	// Feed what was buffered to the engine, then report. Close is
	// idempotent, so this is safe however the loop above exited.
	sess.queue.Close()
	<-sess.drained

	if sess.evicting.Load() && !finished {
		srv.evictions.Add(1)
		sess.conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(sess.conn, wire.FrameError, []byte("raced: session evicted (idle)"))
		srv.logf("session %d: evicted (idle)", sess.id)
		return
	}
	if readErr != nil {
		srv.logf("session %d: %v", sess.id, readErr)
		sess.conn.SetWriteDeadline(time.Now().Add(drainGrace))
		wire.WriteFrame(sess.conn, wire.FrameError, []byte(readErr.Error()))
		return
	}

	rep := detector.Report()
	body, err := json.Marshal(rep)
	if err != nil {
		srv.logf("session %d: marshal report: %v", sess.id, err)
		return
	}
	var flags uint64
	if !finished {
		flags |= wire.FlagPartial
	}
	sess.conn.SetWriteDeadline(time.Now().Add(drainGrace))
	if err := wire.WriteFrame(sess.conn, wire.FrameReport, wire.EncodeReport(flags, body)); err != nil {
		srv.logf("session %d: report: %v", sess.id, err)
		return
	}
	if !finished {
		// Drain: the client may still be mid-write (possibly blocked on
		// TCP backpressure). Half-close our side so it sees the stream
		// end, then discard its remaining output so its blocked writes
		// complete and it can read the partial report.
		if tc, ok := sess.conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		sess.conn.SetReadDeadline(time.Now().Add(drainGrace))
		io.Copy(io.Discard, sess.conn)
	}
	srv.logf("session %d: closed (finished=%v races=%d)", sess.id, finished, rep.Count)
}
