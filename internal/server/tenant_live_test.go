package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/fj"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

// metricsBody fetches /metrics from a handler-backed test server.
func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestTenantLiveRotation swaps a tenant's key on a running server (the
// SetTenants path both SIGHUP and PUT /admin/tenants call): the old
// key must be refused on the very next handshake, the new one
// accepted, and the reload plus the per-tenant refusal must show on
// /metrics — all without a restart.
func TestTenantLiveRotation(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Tenants: map[string]server.Tenant{"acme": {Key: "old"}},
	})
	sess, err := client.Dial(addr, client.WithAuthToken("acme:old"))
	if err != nil {
		t.Fatalf("pre-rotation dial: %v", err)
	}
	sess.Close()

	srv.SetTenants(map[string]server.Tenant{"acme": {Key: "new"}})

	if _, err := client.Dial(addr, client.WithAuthToken("acme:old")); err == nil ||
		!strings.Contains(err.Error(), "invalid tenant credentials") {
		t.Fatalf("rotated-away key admitted: err = %v, want auth refusal", err)
	}
	sess2, err := client.Dial(addr, client.WithAuthToken("acme:new"))
	if err != nil {
		t.Fatalf("rotated key refused: %v", err)
	}
	sess2.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := metricsBody(t, ts)
	for _, want := range []string{
		"raced_tenant_reloads_total 1",
		`raced_tenant_auth_refusals_total{tenant="acme"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestTenantRevocationEvictsInFlight removes a tenant from the live
// table while one of its sessions is streaming: after RevokeGrace the
// janitor must evict that session (counted in
// raced_tenant_revoked_sessions_total) while the surviving tenant's
// session finishes untouched.
func TestTenantRevocationEvictsInFlight(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Tenants: map[string]server.Tenant{
			"doomed":   {Key: "dk"},
			"survivor": {Key: "sk"},
		},
		RevokeGrace: 50 * time.Millisecond,
		// The janitor ticks at ResumeWindow/4; keep the test fast.
		ResumeWindow: 200 * time.Millisecond,
	})
	doomed, err := client.Dial(addr, client.WithAuthToken("doomed:dk"))
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()
	doomed.Event(fj.Event{Kind: fj.EvBegin, T: 0})
	keep, err := client.Dial(addr, client.WithAuthToken("survivor:sk"))
	if err != nil {
		t.Fatal(err)
	}
	defer keep.Close()
	keep.Event(fj.Event{Kind: fj.EvBegin, T: 0})

	srv.SetTenants(map[string]server.Tenant{"survivor": {Key: "sk"}})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(metricsBody(t, ts), "raced_tenant_revoked_sessions_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revoked tenant's session never evicted:\n%s", metricsBody(t, ts))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The surviving tenant's in-flight session is untouched by the
	// other tenant's revocation.
	keep.Event(fj.Event{Kind: fj.EvHalt, T: 0})
	if _, err := keep.Finish(); err != nil {
		t.Fatalf("survivor session broken by revocation: %v", err)
	}
}

// TestTenantAdminEndpoints drives the authenticated admin surface end
// to end: bearer-key gating, key-withholding GET, a PUT that rotates
// the table with immediate wire effect, grammar errors leaving the
// table untouched, and the empty-body "auth off" escape hatch.
func TestTenantAdminEndpoints(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		AdminKey: "adm-key",
		Tenants:  map[string]server.Tenant{"acme": {Key: "supersecret", MaxSessions: 3}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do := func(method, path, auth, body string) (*http.Response, string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.String()
	}

	for _, auth := range []string{"", "Bearer wrong", "Basic adm-key"} {
		if resp, _ := do("GET", "/admin/tenants", auth, ""); resp.StatusCode != http.StatusForbidden {
			t.Errorf("auth %q: status %d, want 403", auth, resp.StatusCode)
		}
	}

	resp, body := do("GET", "/admin/tenants", "Bearer adm-key", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/tenants: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"acme"`) || !strings.Contains(body, `"max_sessions":3`) {
		t.Errorf("GET body missing tenant info: %s", body)
	}
	if strings.Contains(body, "supersecret") {
		t.Errorf("GET /admin/tenants leaks key material: %s", body)
	}

	// Rotate acme's key and add beta, tenant-keys-file grammar with a
	// comment; the swap must bite the next wire handshake.
	resp, body = do("PUT", "/admin/tenants", "Bearer adm-key",
		"# rotated by test\nacme=rotated:2\nbeta=bkey\n")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"count":2`) {
		t.Fatalf("PUT /admin/tenants: %d: %s", resp.StatusCode, body)
	}
	if _, err := client.Dial(addr, client.WithAuthToken("acme:supersecret")); err == nil ||
		!strings.Contains(err.Error(), "invalid tenant credentials") {
		t.Fatalf("pre-rotation key admitted after PUT: err = %v", err)
	}
	for _, cred := range []string{"acme:rotated", "beta:bkey"} {
		sess, err := client.Dial(addr, client.WithAuthToken(cred))
		if err != nil {
			t.Fatalf("%s refused after PUT: %v", cred, err)
		}
		sess.Close()
	}

	// A grammar error is a 400 and leaves the live table untouched.
	if resp, _ := do("PUT", "/admin/tenants", "Bearer adm-key", "acme\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad grammar PUT: %d, want 400", resp.StatusCode)
	}
	if sess, err := client.Dial(addr, client.WithAuthToken("acme:rotated")); err != nil {
		t.Fatalf("table clobbered by rejected PUT: %v", err)
	} else {
		sess.Close()
	}

	if resp, _ := do("DELETE", "/admin/tenants", "Bearer adm-key", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d, want 405", resp.StatusCode)
	}

	// Empty body = empty table = auth off: an explicit operator
	// statement, admitting credential-less sessions.
	if resp, _ := do("PUT", "/admin/tenants", "Bearer adm-key", "# none\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-table PUT: %d", resp.StatusCode)
	}
	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("auth-off dial refused: %v", err)
	}
	sess.Close()
}

// TestTenantAdminReportExport lists and exports persisted reports
// through /admin/reports: the export bytes must be identical to what
// a wire fetch serves, and a cross-tenant token probe answers 404.
func TestTenantAdminReportExport(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		AdminKey: "adm",
		Store:    openLog(t, t.TempDir()),
		Tenants: map[string]server.Tenant{
			"acme": {Key: "k"},
			"beta": {Key: "b"},
		},
	})
	_, token, _ := runWorkload(t, addr, 5, client.WithAuthToken("acme:k"))
	fetched, err := client.Fetch(addr, token, client.WithAuthToken("acme:k"))
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("Authorization", "Bearer adm")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	resp, body := get("/admin/reports?tenant=acme")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), fmt.Sprintf("%x", token)) {
		t.Fatalf("report list: %d: %s", resp.StatusCode, body)
	}
	resp, body = get(fmt.Sprintf("/admin/reports?tenant=acme&token=%x", token))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report export: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, fetched.JSON) {
		t.Errorf("admin export differs from wire fetch\nadmin: %s\nwire:  %s", body, fetched.JSON)
	}
	// Another tenant's token reads as absent, like on the wire.
	if resp, _ := get(fmt.Sprintf("/admin/reports?tenant=beta&token=%x", token)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant export: %d, want 404", resp.StatusCode)
	}
}

// TestStoreReplicaFallbackServing proves the durability hand-off: a
// server hosting replicas answers a fetch for a token its own store
// never saw by consulting the replica logs (the racedctl fan-out
// depends on exactly this), and the replication handshake itself is
// key-gated.
func TestStoreReplicaFallbackServing(t *testing.T) {
	dir := t.TempDir()
	// Seed a replica the way a prior replication session would have
	// left it on disk.
	rec := store.Record{Token: 0xbeef, Session: 9, Tenant: "",
		JSON: []byte(`{"engine":"2d","tasks":1,"locations":0,"race_count":0,"races":[]}`)}
	lg, err := store.OpenLog(store.LogConfig{Dir: filepath.Join(dir, "feedc0de"), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Put(rec); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	rs, err := repl.OpenReplicaSet(dir, true, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })

	_, addr := startServer(t, server.Config{Replicas: rs, ReplKey: "rk"})

	f, err := client.Fetch(addr, rec.Token)
	if err != nil {
		t.Fatalf("fetch of replica-only token: %v", err)
	}
	if !bytes.Equal(f.JSON, rec.JSON) {
		t.Errorf("replica-served report differs: %s != %s", f.JSON, rec.JSON)
	}

	// Replication handshake with the right key: welcomed at the
	// replica's announced position (1 record applied → next index 1).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteMagicVersion(conn, byte(wire.V3)); err != nil {
		t.Fatal(err)
	}
	hello := wire.EncodeReplHello(wire.ReplHello{SourceID: "feedc0de", Key: "rk"})
	if err := wire.WriteFrame(conn, wire.FrameReplHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ft != wire.FrameReplWelcome {
		t.Fatalf("replication handshake answered %v: %s", ft, payload)
	}
	welcome, err := wire.DecodeReplWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Next != 1 {
		t.Errorf("replica position = %d, want 1", welcome.Next)
	}

	// Wrong key: refused, no welcome.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	wire.WriteMagicVersion(conn2, byte(wire.V3))
	wire.WriteFrame(conn2, wire.FrameReplHello, wire.EncodeReplHello(wire.ReplHello{SourceID: "feedc0de", Key: "bad"}))
	ft, payload, err = wire.ReadFrame(conn2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ft != wire.FrameError || !strings.Contains(string(payload), "replication") {
		t.Fatalf("bad-key handshake answered %v: %s", ft, payload)
	}
}
