package server_test

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"

	race2d "repro"
)

// renderVerdict renders a report with Stats and MemoryBytes normalized
// away: a sharded backend's operation counters legitimately differ in
// shape from serial ones, the verdict may not.
func renderVerdict(t *testing.T, rep *race2d.Report, tasks int) string {
	t.Helper()
	rep.Stats = obs.Stats{}
	rep.MemoryBytes = 0
	return renderJSON(t, rep, tasks, nil)
}

// TestShardedSessionsMatchSerial: a server granting every 2D session a
// shard fleet returns verdicts byte-identical to local serial
// detection.
func TestShardedSessionsMatchSerial(t *testing.T) {
	srv, addr := startServer(t, server.Config{Shards: 4})
	for seed := int64(1); seed <= 6; seed++ {
		w := workload.ForkJoin{Seed: seed, Ops: 800, MaxDepth: 5,
			Mix: workload.Mix{Locs: 16, ReadFrac: 0.6}}

		d := race2d.NewEngineSink(race2d.Engine2D)
		localTasks, err := w.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		local := renderVerdict(t, d.Report(), localTasks)

		sess, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		remoteTasks, err := w.Run(sess)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.Shards != 4 {
			t.Fatalf("seed %d: remote report ran %d shards, want 4", seed, rep.Stats.Shards)
		}
		remote := renderVerdict(t, rep, remoteTasks)
		if local != remote {
			t.Errorf("seed %d: sharded remote verdict differs from serial local\nlocal:\n%s\nremote:\n%s",
				seed, local, remote)
		}
	}
	if live := srv.Stats(); live.Shards != 4 {
		t.Fatalf("server stats shards = %d, want 4", live.Shards)
	}
}

// TestShardBudgetFallback: once the global worker budget is exhausted,
// additional sessions run serial — same verdict, no shard counters.
func TestShardBudgetFallback(t *testing.T) {
	srv, addr := startServer(t, server.Config{Shards: 4, ShardBudget: 4})
	w := workload.ForkJoin{Seed: 3, Ops: 400, MaxDepth: 5,
		Mix: workload.Mix{Locs: 8, ReadFrac: 0.5}}

	first, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := w.Run(first); err != nil {
		t.Fatal(err)
	}

	// With the only grant held by the first (still open) session, the
	// second must fall back to serial detection.
	second, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(second); err != nil {
		t.Fatal(err)
	}
	repSerial, err := second.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if repSerial.Stats.Shards != 0 {
		t.Fatalf("over-budget session ran %d shards, want serial", repSerial.Stats.Shards)
	}

	repSharded, err := first.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if repSharded.Stats.Shards != 4 {
		t.Fatalf("granted session ran %d shards, want 4", repSharded.Stats.Shards)
	}
	if renderVerdict(t, repSharded, 0) != renderVerdict(t, repSerial, 0) {
		t.Fatal("sharded and serial sessions disagree on the same workload")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"raced_shard_workers_live 0",
		"raced_shard_workers_budget 4",
		"raced_shard_sessions_total 1",
		"raced_shard_fallbacks_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "raced_shard_handoffs_total") ||
		!strings.Contains(metrics, "raced_shard_stalls_total") {
		t.Errorf("metrics missing shard handoff/stall counters:\n%s", metrics)
	}
}

// TestShardGrantSkipsOtherEngines: only Engine2D sessions consume the
// shard budget.
func TestShardGrantSkipsOtherEngines(t *testing.T) {
	_, addr := startServer(t, server.Config{Shards: 4, ShardBudget: 4})
	w := workload.ForkJoin{Seed: 2, Ops: 200, MaxDepth: 4,
		Mix: workload.Mix{Locs: 6, ReadFrac: 0.5}}
	sess, err := client.Dial(addr, client.WithEngine(race2d.EngineVC.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(sess); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Shards != 0 {
		t.Fatalf("vector-clock session reports %d shards", rep.Stats.Shards)
	}
}
