package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/server"
)

// The admin surface lives on the observability handler (the -metrics
// listener in raced), enabled by a non-empty AdminKey and guarded by
// "Authorization: Bearer <key>". PUT /admin/tenants accepts the
// -tenant-keys-file grammar (one name=key[:sessions[:bytes]] per
// line) and swaps the live table atomically — the very next handshake
// sees the new keys, no restart. GET returns the table with the keys
// withheld; /admin/reports lists and exports a tenant's persisted
// verdicts when the server is store-backed.
func ExampleServer_adminTenants() {
	srv := server.New(server.Config{
		AdminKey: "adm-secret",
		Tenants:  map[string]server.Tenant{"acme": {Key: "old"}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do := func(method, body string, authed bool) {
		req, _ := http.NewRequest(method, ts.URL+"/admin/tenants", strings.NewReader(body))
		if authed {
			req.Header.Set("Authorization", "Bearer adm-secret")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fmt.Println(err)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		fmt.Printf("%s %d %s", method, resp.StatusCode, b)
	}

	do(http.MethodPut, "acme=rotated:100\ndev=hunter2\n", false) // no key: refused
	do(http.MethodPut, "acme=rotated:100\ndev=hunter2\n", true)  // rotate + add
	do(http.MethodGet, "", true)                                 // keys withheld
	// Output:
	// PUT 403 admin: forbidden
	// PUT 200 {"count":2,"enabled":true}
	// GET 200 {"enabled":true,"tenants":{"acme":{"max_sessions":100,"max_store_bytes":0,"live_sessions":0},"dev":{"max_sessions":0,"max_store_bytes":0,"live_sessions":0}}}
}
