package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/faults"
	"repro/internal/fj"
	"repro/internal/prog"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"

	race2d "repro"
)

// startChaosServer starts a raced server behind a fault-injecting
// listener: every accepted connection is perturbed on fcfg's schedule.
func startChaosServer(t *testing.T, cfg server.Config, fcfg faults.Config) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cfg)
	go srv.Serve(faults.New(fcfg).Listener(ln))
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// chaosOpts tunes the client for fault-heavy tests: small frames so
// sequencing is exercised, fast reconnects, and a budget generous
// enough that the injector's MaxFaults — not the client — decides when
// the weather clears.
func chaosOpts() client.Options {
	return client.Options{
		FrameEvents: 64,
		// Corruption can garble a handshake into a silent stall (the
		// server blocks on a phantom length prefix); a short dial timeout
		// turns each such stall into a quick retry on loopback.
		DialTimeout:   250 * time.Millisecond,
		FinishTimeout: 30 * time.Second,
		WriteTimeout:  2 * time.Second,
		// A fast heartbeat keeps the tests quick: a corrupted length
		// prefix can leave a receiver blocked waiting for phantom bytes,
		// and the next heartbeat (or its ack) is what unsticks it.
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
		MaxAttempts:       200,
		BackoffBase:       time.Millisecond,
		BackoffMax:        20 * time.Millisecond,
		RetainAll:         true,
	}
}

// TestChaosParity is the fault-tolerance acceptance bar: for every
// fault class, across 20 seeded workloads each, a session streamed
// through an aggressively faulty transport must produce a Report
// byte-identical to the undisturbed local run. The injector's fault
// budget guarantees the weather eventually clears, so Finish must
// return a clean (non-partial) verdict.
func TestChaosParity(t *testing.T) {
	classes := []faults.Class{faults.Delay, faults.Corrupt, faults.Partial, faults.Drop, faults.Reset, faults.All}
	for _, class := range classes {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 20; seed++ {
				c := workload.ForkJoin{
					Seed:     seed,
					Ops:      600,
					MaxDepth: 4,
					Mix:      workload.Mix{Locs: 16, ReadFrac: 0.6},
				}
				d := race2d.NewEngineSink(race2d.Engine2D)
				localTasks, err := c.Run(d)
				if err != nil {
					t.Fatal(err)
				}
				local := renderJSON(t, d.Report(), localTasks, nil)

				_, addr := startChaosServer(t,
					server.Config{ResumeWindow: 10 * time.Second},
					faults.Config{Seed: seed, Classes: class, Every: 2, MaxFaults: 20, MaxDelay: 500 * time.Microsecond})
				sess, err := client.DialOptions(addr, chaosOpts())
				if err != nil {
					t.Fatalf("seed %d: dial through %v faults: %v", seed, class, err)
				}
				remoteTasks, err := c.Run(sess)
				if err != nil {
					sess.Close()
					t.Fatalf("seed %d: %v", seed, err)
				}
				rep, err := sess.Finish()
				sess.Close()
				if err != nil {
					t.Fatalf("seed %d: Finish under %v faults: %v", seed, class, err)
				}
				remote := renderJSON(t, rep, remoteTasks, nil)
				if local != remote {
					t.Errorf("seed %d: %v faults changed the verdict\nlocal:\n%s\nremote:\n%s",
						seed, class, local, remote)
				}
			}
		})
	}
}

// TestChaosParityCorpus replays every corpus program through an
// all-classes faulty transport and demands byte-identical reports.
func TestChaosParityCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "race2d", "testdata", "*.fj"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, file := range files {
		for fseed := int64(1); fseed <= 3; fseed++ {
			t.Run(fmt.Sprintf("%s/fault-seed-%d", filepath.Base(file), fseed), func(t *testing.T) {
				data, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				p, err := prog.Parse(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				d := race2d.NewEngineSink(race2d.Engine2D)
				localRes, err := prog.Exec(p, d)
				if err != nil {
					t.Fatal(err)
				}
				local := renderJSON(t, d.Report(), localRes.Tasks, localRes.LocName)

				_, addr := startChaosServer(t,
					server.Config{ResumeWindow: 10 * time.Second},
					faults.Config{Seed: fseed, Classes: faults.All, Every: 2, MaxFaults: 15, MaxDelay: 500 * time.Microsecond})
				sess, err := client.DialOptions(addr, chaosOpts())
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				remoteRes, err := prog.Exec(p, sess)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sess.Finish()
				if err != nil {
					t.Fatal(err)
				}
				remote := renderJSON(t, rep, remoteRes.Tasks, remoteRes.LocName)
				if local != remote {
					t.Errorf("faults changed the verdict\nlocal:\n%s\nremote:\n%s", local, remote)
				}
			})
		}
	}
}

// TestRetryBudgetExhausted checks the circuit breaker: when the server
// vanishes for good, Finish must come back with an error wrapping
// ErrPartial — never hang.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	sess, err := client.DialOptions(addr, client.Options{
		MaxAttempts:   3,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		FinishTimeout: 10 * time.Second,
		RetainAll:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	streamRacyPrefix(t, sess, 100)
	srv.Close() // the server is gone and never coming back

	done := make(chan struct{})
	var rep *race2d.Report
	var ferr error
	go func() {
		rep, ferr = sess.Finish()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Finish hung after the retry budget should have been exhausted")
	}
	if !errors.Is(ferr, client.ErrPartial) {
		t.Fatalf("Finish err = %v, want ErrPartial", ferr)
	}
	if rep != nil {
		t.Fatalf("no server ever reported, yet Finish returned %+v", rep)
	}
	if st := sess.Stats(); st.Reconnects == 0 && st.Resends == 0 {
		t.Log("note: circuit opened before any reconnect succeeded (expected)")
	}
}

// TestServerRestartResume checks the strongest recovery mode: the
// server process is torn down completely (all session state lost) and a
// fresh one binds the same address; a RetainAll client must notice its
// resume token is unknown, open a fresh session, replay the entire
// stream, and land on the byte-identical verdict.
func TestServerRestartResume(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := server.New(server.Config{})
	go srv1.Serve(ln)

	c := workload.ForkJoin{
		Seed:     42,
		Ops:      1200,
		MaxDepth: 5,
		Mix:      workload.Mix{Locs: 24, ReadFrac: 0.6},
	}
	d := race2d.NewEngineSink(race2d.Engine2D)
	localTasks, err := c.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	local := renderJSON(t, d.Report(), localTasks, nil)

	sess, err := client.DialOptions(addr, client.Options{
		FrameEvents:   64,
		FinishTimeout: 30 * time.Second,
		MaxAttempts:   100,
		BackoffBase:   time.Millisecond,
		BackoffMax:    20 * time.Millisecond,
		RetainAll:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	remoteTasks, err := c.Run(sess)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill the server outright — sessions, tokens, reports, all gone —
	// and restart on the same address.
	srv1.Close()
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv2 := server.New(server.Config{})
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	rep, err := sess.Finish()
	if err != nil {
		t.Fatalf("Finish across server restart: %v", err)
	}
	remote := renderJSON(t, rep, remoteTasks, nil)
	if local != remote {
		t.Errorf("restart changed the verdict\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	st := sess.Stats()
	if st.Reconnects == 0 {
		t.Error("client claims it never reconnected across the restart")
	}
	if st.Resends == 0 {
		t.Error("client claims it never resent the stream into the fresh session")
	}
	if got := srv2.Stats().Sessions; got != 1 {
		t.Errorf("restarted server saw %d sessions, want 1", got)
	}
}

// TestResumeAfterConnKill exercises token resume directly: exactly one
// connection reset, injected deterministically mid-stream, severs the
// transport while the server-side session survives suspended. The
// client must reconnect with its token and land on the right verdict,
// and both sides must count the recovery.
func TestResumeAfterConnKill(t *testing.T) {
	srv, addr := startChaosServer(t,
		server.Config{ResumeWindow: 10 * time.Second},
		faults.Config{Seed: 7, Classes: faults.Reset, Every: 5, MaxFaults: 1})
	c := workload.ForkJoin{
		Seed:     7,
		Ops:      1000,
		MaxDepth: 4,
		Mix:      workload.Mix{Locs: 16, ReadFrac: 0.5},
	}
	d := race2d.NewEngineSink(race2d.Engine2D)
	localTasks, err := c.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	local := renderJSON(t, d.Report(), localTasks, nil)

	sess, err := client.DialOptions(addr, client.Options{
		FrameEvents:   32,
		FinishTimeout: 20 * time.Second,
		MaxAttempts:   50,
		BackoffBase:   time.Millisecond,
		BackoffMax:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	remoteTasks, err := c.Run(sess)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Finish()
	if err != nil {
		t.Fatalf("Finish across a severed transport: %v", err)
	}
	remote := renderJSON(t, rep, remoteTasks, nil)
	if local != remote {
		t.Errorf("conn kill changed the verdict\nlocal:\n%s\nremote:\n%s", local, remote)
	}
	if st := srv.Stats(); st.Resumes == 0 {
		t.Errorf("server stats count no resumes: %+v", st)
	}
	if st := sess.Stats(); st.Reconnects == 0 {
		t.Errorf("client stats count no reconnects: %+v", st)
	}
}

// collectSink gathers events so a test can replay them by hand.
type collectSink struct{ into *[]fj.Event }

func (c *collectSink) Event(e fj.Event) { *c.into = append(*c.into, e) }

// TestV1ClientCompat drives the server with a hand-rolled protocol-v1
// stream — v1 magic, tokenless Hello, unsequenced Events — and checks
// the v2 server still answers it exactly like PR 4's server did.
func TestV1ClientCompat(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	files, err := filepath.Glob(filepath.Join("..", "..", "cmd", "race2d", "testdata", "*.fj"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := prog.Parse(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			d := race2d.NewEngineSink(race2d.Engine2D)
			localRes, err := prog.Exec(p, d)
			if err != nil {
				t.Fatal(err)
			}
			local := renderJSON(t, d.Report(), localRes.Tasks, localRes.LocName)

			var events []fj.Event
			remoteRes, err := prog.Exec(p, &collectSink{into: &events})
			if err != nil {
				t.Fatal(err)
			}

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if err := wire.WriteMagicVersion(conn, wire.V1); err != nil {
				t.Fatal(err)
			}
			if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(wire.Hello{Engine: "2d"})); err != nil {
				t.Fatal(err)
			}
			ft, payload, err := wire.ReadFrame(conn, nil)
			if err != nil || ft != wire.FrameWelcome {
				t.Fatalf("welcome: %v %v", ft, err)
			}
			if _, err := wire.DecodeWelcome(payload); err != nil {
				t.Fatalf("v1 welcome decode: %v", err)
			}
			// The v1 welcome must not smuggle v2 fields.
			if _, err := wire.DecodeWelcomeV2(payload); !errors.Is(err, wire.ErrTruncated) {
				t.Fatalf("v1 welcome carries v2 fields (decode err = %v)", err)
			}
			for i := 0; i < len(events); i += 256 {
				chunk := events[i:min(i+256, len(events))]
				if err := wire.WriteFrame(conn, wire.FrameEvents, wire.EncodeEvents(nil, chunk)); err != nil {
					t.Fatal(err)
				}
			}
			if err := wire.WriteFrame(conn, wire.FrameFinish, nil); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			conn.SetReadDeadline(deadline)
			ft, payload, err = wire.ReadFrame(conn, nil)
			if err != nil || ft != wire.FrameReport {
				t.Fatalf("report: %v %v", ft, err)
			}
			flags, body, err := wire.DecodeReport(payload)
			if err != nil || flags != 0 {
				t.Fatalf("report decode: flags=%d err=%v", flags, err)
			}
			rep := &race2d.Report{}
			if err := json.Unmarshal(body, rep); err != nil {
				t.Fatal(err)
			}
			remote := renderJSON(t, rep, remoteRes.Tasks, remoteRes.LocName)
			if local != remote {
				t.Errorf("v1 stream verdict differs\nlocal:\n%s\nremote:\n%s", local, remote)
			}
		})
	}
}

// TestHandshakeFailureModes checks that each malformed-handshake class
// is answered with a typed wire error and counted in the refusal
// metric: wrong magic, unsupported version, garbage instead of a Hello
// frame, and a structurally valid Hello frame with a truncated payload.
func TestHandshakeFailureModes(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	magicV2 := wire.MagicFor(wire.V2)
	badVersion := wire.MagicFor(99)
	truncatedHello := wire.AppendFrame(nil, wire.FrameHello,
		wire.EncodeHello(wire.Hello{Engine: "fasttrack", BatchSize: 64})[:1])

	cases := []struct {
		name string
		send []byte
		want string // substring of the Error frame payload
	}{
		{"wrong-magic", []byte("HTTP/1.1 GET /\r\n"), wire.ErrBadMagic.Error()},
		{"unsupported-version", append(badVersion[:], wire.AppendFrame(nil, wire.FrameHello, wire.EncodeHello(wire.Hello{}))...), wire.ErrVersion.Error()},
		{"garbage-before-hello", append(magicV2[:], bytes.Repeat([]byte{0xFF}, 64)...), "reading hello"},
		{"hello-truncated", append(magicV2[:], truncatedHello...), "malformed hello"},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(c.send); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			ft, payload, err := wire.ReadFrame(conn, nil)
			if err != nil || ft != wire.FrameError {
				t.Fatalf("want an Error frame back, got %v (%v)", ft, err)
			}
			if !strings.HasPrefix(string(payload), wire.HandshakeRefusedPrefix) {
				t.Errorf("refusal %q lacks the handshake prefix", payload)
			}
			if !strings.Contains(string(payload), c.want) {
				t.Errorf("refusal %q does not name the failure %q", payload, c.want)
			}
			if got := srv.Stats().HandshakeRefusals; got != uint64(i+1) {
				t.Errorf("HandshakeRefusals = %d, want %d", got, i+1)
			}
		})
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), fmt.Sprintf("raced_handshake_refusals_total %d", len(cases))) {
		t.Errorf("/metrics missing refusal counter:\n%s", body.String())
	}
}
