package faults

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConn returns a connected TCP pair on loopback (net.Pipe has no
// deadlines and unusual write semantics; real sockets behave like the
// deployment target).
func pipeConn(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return client, r.c
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{
		"all":          All,
		"none":         0,
		"drop,delay":   Drop | Delay,
		"corrupt|drop": Corrupt | Drop,
	} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("gremlins"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestDeterministicSchedule: the same seed must produce the same fault
// script on a fresh injector.
func TestDeterministicSchedule(t *testing.T) {
	script := func(seed int64) []Class {
		in := New(Config{Seed: seed, Classes: All, Rate: 0.5})
		p := newPath(in, 1, 1)
		var out []Class
		for i := 0; i < 200; i++ {
			c, _, _ := p.next(in)
			out = append(out, c)
		}
		return out
	}
	a, b := script(7), script(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: schedule diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	faults := 0
	for _, c := range a {
		if c != 0 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("rate 0.5 over 200 ops injected nothing")
	}
	diff := script(8)
	same := 0
	for i := range a {
		if a[i] == diff[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestEverySchedules: Every gives exact scripting.
func TestEverySchedules(t *testing.T) {
	in := New(Config{Seed: 1, Classes: Delay, Every: 3})
	p := newPath(in, 1, 0)
	for i := 1; i <= 12; i++ {
		c, _, _ := p.next(in)
		if want := i%3 == 0; (c != 0) != want {
			t.Fatalf("op %d: fault=%v, want %v", i, c != 0, want)
		}
	}
}

// TestMaxFaultsBudget: after MaxFaults faults the wrapped conn behaves
// perfectly, so a retrying peer always gets a clean run eventually.
func TestMaxFaultsBudget(t *testing.T) {
	in := New(Config{Seed: 3, Classes: Delay, Every: 1, MaxFaults: 5, MaxDelay: time.Microsecond})
	p := newPath(in, 1, 0)
	injected := 0
	for i := 0; i < 100; i++ {
		if c, _, _ := p.next(in); c != 0 {
			injected++
		}
	}
	if injected != 5 {
		t.Fatalf("injected %d faults, want exactly the budget of 5", injected)
	}
	if in.Injected() != 5 {
		t.Fatalf("Injected() = %d, want 5", in.Injected())
	}
}

// TestCorruptIsDetectable: a corrupting conn flips bytes in transit
// without changing lengths.
func TestCorruptIsDetectable(t *testing.T) {
	a, b := pipeConn(t)
	defer a.Close()
	defer b.Close()
	in := New(Config{Seed: 1, Classes: Corrupt, Every: 1})
	fc := in.Conn(a)

	msg := []byte("hello, detector")
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupting conn delivered the bytes unchanged")
	}
	diffs := 0
	for i := range msg {
		if msg[i] != got[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 flipped", diffs)
	}
}

// TestPartialWriteTruncates: a partial fault delivers a strict prefix
// and severs the conn so the receiver sees EOF, not a hang.
func TestPartialWriteTruncates(t *testing.T) {
	a, b := pipeConn(t)
	defer a.Close()
	defer b.Close()
	in := New(Config{Seed: 2, Classes: Partial, Every: 1})
	fc := in.Conn(a)

	msg := bytes.Repeat([]byte("x"), 4096)
	n, err := fc.Write(msg)
	if err == nil || !IsInjected(err) {
		t.Fatalf("partial write err = %v, want injected", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write wrote %d of %d bytes", n, len(msg))
	}
	got, _ := io.ReadAll(b)
	if len(got) != n {
		t.Fatalf("receiver saw %d bytes, sender claims %d", len(got), n)
	}
}

// TestResetSevers: a reset fault fails the op and kills the transport.
func TestResetSevers(t *testing.T) {
	a, b := pipeConn(t)
	defer a.Close()
	defer b.Close()
	in := New(Config{Seed: 4, Classes: Reset, Every: 1})
	fc := in.Conn(a)
	if _, err := fc.Write([]byte("boom")); !IsInjected(err) {
		t.Fatalf("reset write err = %v, want injected", err)
	}
	if got, _ := io.ReadAll(b); len(got) != 0 {
		t.Fatalf("receiver saw %d bytes after reset", len(got))
	}
}

// TestDropSwallowsAndSevers: a drop fault reports success but delivers
// nothing, then severs so the loss is observable.
func TestDropSwallowsAndSevers(t *testing.T) {
	a, b := pipeConn(t)
	defer a.Close()
	defer b.Close()
	in := New(Config{Seed: 5, Classes: Drop, Every: 1})
	fc := in.Conn(a)
	msg := []byte("vanishes")
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("drop write = %d, %v; want full claimed success", n, err)
	}
	if got, _ := io.ReadAll(b); len(got) != 0 {
		t.Fatalf("receiver saw %d dropped bytes", len(got))
	}
}

// TestListenerWraps: accepted conns inherit the injector.
func TestListenerWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 6, Classes: Corrupt, Every: 1})
	fln := in.Listener(ln)
	defer fln.Close()

	done := make(chan []byte, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		done <- buf
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	got := <-done
	if got == nil {
		t.Fatal("accept failed")
	}
	if bytes.Equal(got, []byte("ping")) {
		t.Fatal("listener-wrapped conn did not inject on read")
	}
}
