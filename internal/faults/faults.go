// Package faults is a deterministic, seed-driven network fault
// injector: it wraps a net.Conn (or a net.Listener, fault-wrapping
// every accepted connection) and perturbs the byte streams flowing
// through it on a scripted schedule — injected delays, partial writes,
// flipped bytes, silently dropped writes, and mid-stream connection
// resets.
//
// The schedule is a pure function of the Config seed, the connection's
// admission index, the direction (read or write), and the count of
// operations on that path: each (conn, direction) pair owns its own
// PRNG derived from those inputs, so a given seed reproduces the same
// fault script run after run regardless of goroutine interleaving
// between connections. That determinism is what makes chaos parity
// testable — a failing seed is a repro, not an anecdote.
//
// The injector exists to exercise the wire protocol's fault-tolerance
// machinery (internal/wire v2, client resume, server suspend): every
// fault class maps to a failure the protocol must absorb. Corruption is
// caught by the per-frame CRC, truncation by the length prefix, and
// drops/resets/stalls by acknowledgement sequence numbers, heartbeats
// and reconnect — so detection under injected faults must replay to a
// byte-identical Report.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a bitmask of fault classes to inject.
type Class uint8

const (
	// Delay stalls an operation for a random duration up to MaxDelay.
	Delay Class = 1 << iota
	// Corrupt flips one byte of the data in transit. The wire CRC turns
	// this into a loud checksum failure at the receiver.
	Corrupt
	// Partial delivers only a prefix of a write, then severs the
	// connection — the receiver sees a truncated frame.
	Partial
	// Drop swallows a write whole (reporting success to the sender),
	// then severs the connection so the loss is detectable rather than
	// a silent hang.
	Drop
	// Reset severs the connection immediately, failing the operation.
	Reset

	// All enables every fault class.
	All = Delay | Corrupt | Partial | Drop | Reset
)

// String renders the enabled classes, e.g. "delay|corrupt".
func (c Class) String() string {
	names := []struct {
		bit  Class
		name string
	}{{Delay, "delay"}, {Corrupt, "corrupt"}, {Partial, "partial"}, {Drop, "drop"}, {Reset, "reset"}}
	var parts []string
	for _, n := range names {
		if c&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ParseClass parses a '|' or ','-separated class list ("drop,delay",
// "all", "none").
func ParseClass(s string) (Class, error) {
	var c Class
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == '|' || r == ',' }) {
		switch strings.TrimSpace(part) {
		case "delay":
			c |= Delay
		case "corrupt":
			c |= Corrupt
		case "partial":
			c |= Partial
		case "drop":
			c |= Drop
		case "reset":
			c |= Reset
		case "all":
			c |= All
		case "none", "":
		default:
			return 0, fmt.Errorf("faults: unknown fault class %q (want delay|corrupt|partial|drop|reset|all|none)", part)
		}
	}
	return c, nil
}

// Config tunes an Injector.
type Config struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Classes selects which fault classes may be injected (All when 0
	// would be ambiguous with "none", so zero means none; callers
	// normally pass All or an explicit set).
	Classes Class
	// Rate is the per-operation fault probability (0.02 when 0 and
	// Every is 0).
	Rate float64
	// Every, when > 0, replaces the probabilistic schedule: exactly
	// every Every-th operation on each (conn, direction) path faults.
	// Precise scripting for unit tests.
	Every int
	// MaxFaults bounds the total faults injected across all connections
	// of this Injector; once spent, the wrapped endpoints behave
	// perfectly. 0 means unlimited. A finite budget guarantees a
	// retrying client eventually succeeds.
	MaxFaults int
	// MaxDelay caps an injected delay (2ms when 0).
	MaxDelay time.Duration
}

// Injector hands out fault-wrapped connections sharing one fault
// budget and one deterministic schedule.
type Injector struct {
	cfg      Config
	conns    atomic.Uint64 // admission index for per-conn seeds
	injected atomic.Int64  // faults spent against MaxFaults
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Rate <= 0 {
		cfg.Rate = 0.02
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Injected returns how many faults have been injected so far.
func (in *Injector) Injected() int { return int(in.injected.Load()) }

// spend claims one fault from the budget; false when the budget is
// exhausted (the op must proceed cleanly).
func (in *Injector) spend() bool {
	for {
		n := in.injected.Load()
		if in.cfg.MaxFaults > 0 && n >= int64(in.cfg.MaxFaults) {
			return false
		}
		if in.injected.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Conn wraps c with fault injection on both directions.
func (in *Injector) Conn(c net.Conn) net.Conn {
	idx := int64(in.conns.Add(1))
	return &conn{
		Conn:  c,
		in:    in,
		read:  newPath(in, idx, 0),
		write: newPath(in, idx, 1),
	}
}

// Listener wraps ln so every accepted connection is fault-injected —
// the server-side deployment of the injector (raced -chaos).
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// path is one direction of one connection: its own PRNG (deterministic
// schedule) and operation counter.
type path struct {
	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

func newPath(in *Injector, connIdx, dir int64) *path {
	// Distinct, stable stream per (seed, conn, direction).
	seed := in.cfg.Seed*1000003 + connIdx*2 + dir + 12345
	return &path{rng: rand.New(rand.NewSource(seed))}
}

// next decides the fault (if any) for the path's next operation and
// charges the injector budget. The PRNG is always advanced the same
// way, so the schedule stays deterministic even when the budget runs
// out mid-script.
func (p *path) next(in *Injector) (Class, time.Duration, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops++
	cfg := in.cfg
	roll := p.rng.Float64()
	pick := p.rng.Intn(8)   // class selector
	frac := p.rng.Float64() // delay / cut-point fraction
	due := cfg.Every > 0 && p.ops%cfg.Every == 0
	if cfg.Every == 0 {
		due = roll < cfg.Rate
	}
	if !due || cfg.Classes == 0 {
		return 0, 0, 0
	}
	// Choose among the enabled classes, deterministically from pick.
	var enabled []Class
	for _, c := range []Class{Delay, Corrupt, Partial, Drop, Reset} {
		if cfg.Classes&c != 0 {
			enabled = append(enabled, c)
		}
	}
	class := enabled[pick%len(enabled)]
	if !in.spend() {
		return 0, 0, 0
	}
	delay := time.Duration(frac * float64(cfg.MaxDelay))
	cut := int(frac * 1000)
	return class, delay, cut
}

// conn injects faults into one connection.
type conn struct {
	net.Conn
	in     *Injector
	read   *path
	write  *path
	closed atomic.Bool
}

// errInjected marks a fault-injector-caused failure, so tests can tell
// injected faults from real ones.
type errInjected struct{ what string }

func (e *errInjected) Error() string { return "faults: injected " + e.what }

// IsInjected reports whether err came from a fault injector.
func IsInjected(err error) bool {
	var ie *errInjected
	return errors.As(err, &ie)
}

// sever closes the underlying connection so both sides observe the
// fault promptly instead of hanging.
func (c *conn) sever() {
	if c.closed.CompareAndSwap(false, true) {
		c.Conn.Close()
	}
}

func (c *conn) Write(p []byte) (int, error) {
	class, delay, cut := c.write.next(c.in)
	switch class {
	case Delay:
		time.Sleep(delay)
	case Corrupt:
		if len(p) > 0 {
			tainted := make([]byte, len(p))
			copy(tainted, p)
			tainted[cut%len(tainted)] ^= 0x55
			return c.Conn.Write(tainted)
		}
	case Partial:
		if len(p) > 1 {
			k := 1 + cut%(len(p)-1)
			n, err := c.Conn.Write(p[:k])
			c.sever()
			if err != nil {
				return n, err
			}
			return n, &errInjected{"partial write"}
		}
	case Drop:
		c.sever()
		return len(p), nil // swallowed whole; the severed conn surfaces the loss
	case Reset:
		c.sever()
		return 0, &errInjected{"connection reset"}
	}
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	class, delay, cut := c.read.next(c.in)
	switch class {
	case Delay:
		time.Sleep(delay)
	case Corrupt:
		n, err := c.Conn.Read(p)
		if n > 0 {
			p[cut%n] ^= 0x55
		}
		return n, err
	case Partial:
		// Read-side "partial": deliver a short read, then sever.
		if len(p) > 1 {
			n, err := c.Conn.Read(p[:1+cut%(len(p)-1)])
			c.sever()
			if err != nil {
				return n, err
			}
			return n, &errInjected{"read cut short"}
		}
	case Drop, Reset:
		c.sever()
		return 0, &errInjected{"connection reset"}
	}
	return c.Conn.Read(p)
}

func (c *conn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// Writer wraps w with deterministic write-fault injection — the
// disk-shaped deployment of the injector, used against the store's
// segment append path. Network classes map onto the failures a file
// write can actually produce: Partial becomes a short write (a prefix
// lands, then the error), everything else except Delay becomes an
// ENOSPC-style clean refusal (no bytes written, error returned). Unlike
// the net.Conn wrapper nothing is ever silently corrupted or swallowed:
// a durable write that lies about success is not a recoverable fault.
func (in *Injector) Writer(w io.Writer) io.Writer {
	idx := int64(in.conns.Add(1))
	return &writer{w: w, in: in, path: newPath(in, idx, 1)}
}

type writer struct {
	w    io.Writer
	in   *Injector
	path *path
}

func (fw *writer) Write(p []byte) (int, error) {
	class, delay, cut := fw.path.next(fw.in)
	switch class {
	case Delay:
		time.Sleep(delay)
	case Partial:
		if len(p) > 1 {
			k := 1 + cut%(len(p)-1)
			n, err := fw.w.Write(p[:k])
			if err != nil {
				return n, err
			}
			return n, &errInjected{"short write"}
		}
	case Corrupt, Drop, Reset:
		return 0, &errInjected{"write refused (no space)"}
	}
	return fw.w.Write(p)
}
