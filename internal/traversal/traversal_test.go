package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/order"
)

func TestFigure4Exact(t *testing.T) {
	g := Figure3()
	got, err := NonSeparating(g)
	if err != nil {
		t.Fatal(err)
	}
	want := Figure4Want()
	if !Equal(got, want) {
		t.Fatalf("Figure 4 traversal mismatch:\n got  %v\n want %v", got, want)
	}
}

func TestFigure4Validates(t *testing.T) {
	g := Figure3()
	tr, err := NonSeparating(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr, g, graph.NewReach(g)); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7Exact(t *testing.T) {
	g := Figure3()
	tr, err := NonSeparating(g)
	if err != nil {
		t.Fatal(err)
	}
	got := Delay(tr, graph.NewReach(g), g.N())
	want := Figure7Want()
	if !Equal(got, want) {
		t.Fatalf("Figure 7 delayed traversal mismatch:\n got  %v\n want %v", got, want)
	}
}

func TestFigure7Validates(t *testing.T) {
	g := Figure3()
	tr, _ := NonSeparating(g)
	r := graph.NewReach(g)
	if err := ValidateDelayed(Delay(tr, r, g.N()), g, r); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3IsTwoDimensionalLattice(t *testing.T) {
	g := Figure3()
	p := order.NewPoset(g)
	if err := p.IsLattice(); err != nil {
		t.Fatal(err)
	}
	left, err := NonSeparating(g)
	if err != nil {
		t.Fatal(err)
	}
	right, err := RightToLeft(g)
	if err != nil {
		t.Fatal(err)
	}
	real := order.Realizer{L1: left.VertexOrder(), L2: right.VertexOrder()}
	if err := order.TwoDimensional(p, real); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSupremaExamples(t *testing.T) {
	// Section 3: "If on Figure 4 we let x = 3 and t = 5, then r = 6 …
	// sup{x,t} equals vertex 6. On the other hand, if x = 1 and t = 5,
	// then r = 4 and sup{x,t} equals vertex 5."
	p := order.NewPoset(Figure3())
	if s, ok := p.Sup(3-1, 5-1); !ok || s != 6-1 {
		t.Fatalf("sup{3,5} = %d, %v; want 6", s+1, ok)
	}
	if s, ok := p.Sup(1-1, 5-1); !ok || s != 5-1 {
		t.Fatalf("sup{1,5} = %d, %v; want 5", s+1, ok)
	}
}

func TestTraversalString(t *testing.T) {
	tr := T{{Kind: Loop, S: 0, T: 0}, {Kind: LastArc, S: 0, T: 1}, {Kind: StopArc, S: 0, T: -1}}
	if got, want := tr.String(), "(0,0)(0,1)(0,x)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestKindString(t *testing.T) {
	if Loop.String() != "loop" || LastArc.String() != "last-arc" ||
		Arc.String() != "arc" || StopArc.String() != "stop-arc" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestNonSeparatingRejectsMultipleSources(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 2)
	g.AddArc(1, 2)
	if _, err := NonSeparating(g); err == nil {
		t.Fatal("expected error for two sources")
	}
}

func TestGridTraversalValid(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {1, 5}, {5, 1}, {3, 4}, {6, 6}} {
		g := order.Grid(dim[0], dim[1])
		tr, err := NonSeparating(g)
		if err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		r := graph.NewReach(g)
		if err := Validate(tr, g, r); err != nil {
			t.Fatalf("grid %v: %v", dim, err)
		}
		if err := ValidateDelayed(Delay(tr, r, g.N()), g, r); err != nil {
			t.Fatalf("grid %v delayed: %v", dim, err)
		}
	}
}

func TestGridRealizer(t *testing.T) {
	g := order.Grid(4, 5)
	p := order.NewPoset(g)
	left, _ := NonSeparating(g)
	right, _ := RightToLeft(g)
	real := order.Realizer{L1: left.VertexOrder(), L2: right.VertexOrder()}
	if err := order.TwoDimensional(p, real); err != nil {
		t.Fatal(err)
	}
}

// randomStaircase builds a random staircase sublattice of a grid.
func randomStaircase(rng *rand.Rand) *graph.Digraph {
	rows := 2 + rng.Intn(5)
	cols := 2 + rng.Intn(5)
	lo := make([]int, rows)
	hi := make([]int, rows)
	for i := 0; i < rows; i++ {
		if i == 0 {
			lo[0] = 0
			hi[0] = rng.Intn(cols)
			continue
		}
		// lo in [lo[i-1], hi[i-1]] keeps rows overlapping and monotone.
		lo[i] = lo[i-1] + rng.Intn(hi[i-1]-lo[i-1]+1)
		// hi in [max(hi[i-1], lo[i]), cols-1], monotone and ≥ lo.
		base := hi[i-1]
		if lo[i] > base {
			base = lo[i]
		}
		hi[i] = base + rng.Intn(cols-base)
	}
	g, _, err := order.Staircase(rows, cols, lo, hi)
	if err != nil {
		panic(err)
	}
	return g
}

func TestStaircaseTraversalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomStaircase(rng)
		p := order.NewPoset(g)
		if p.IsLattice() != nil {
			return false
		}
		tr, err := NonSeparating(g)
		if err != nil {
			return false
		}
		if Validate(tr, g, p.R) != nil {
			return false
		}
		right, err := RightToLeft(g)
		if err != nil {
			return false
		}
		real := order.Realizer{L1: tr.VertexOrder(), L2: right.VertexOrder()}
		return real.Verify(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayPreservesArcMultiset(t *testing.T) {
	g := Figure3()
	tr, _ := NonSeparating(g)
	d := Delay(tr, graph.NewReach(g), g.N())
	count := 0
	for _, it := range d {
		if it.Kind == Arc || it.Kind == LastArc {
			if !g.HasArc(it.S, it.T) {
				t.Fatalf("delayed traversal invented arc %v", it)
			}
			count++
		}
	}
	if count != g.M() {
		t.Fatalf("delayed traversal has %d arcs, graph %d", count, g.M())
	}
}

func TestLoopPos(t *testing.T) {
	g := order.Grid(2, 2)
	tr, _ := NonSeparating(g)
	pos := tr.LoopPos(4)
	for v, p := range pos {
		if p < 0 || tr[p].Kind != Loop || tr[p].S != v {
			t.Fatalf("LoopPos[%d] = %d wrong", v, p)
		}
	}
}
