package traversal

import (
	"fmt"

	"repro/internal/graph"
)

// Validate checks that t is a plausible non-separating traversal of g:
//
//  1. every vertex occurs exactly once as a loop, every arc exactly once;
//  2. loops form a linear extension of reachability (topological);
//  3. each arc (s, t) lies strictly between loop(s) and loop(t), which is
//     the paper's "(x,y) ≤T (y,y) ≤T (y,z)" ordering;
//  4. the out-arcs of every vertex are visited in embedding (left-to-right)
//     order, with exactly the rightmost marked as the last-arc;
//  5. no stop-arcs occur (those belong to delayed traversals).
//
// Left-to-right depth-firstness beyond (4) is established semantically by
// the Theorem 1 property tests rather than syntactically here.
func Validate(t T, g *graph.Digraph, r *graph.Reach) error {
	n := g.N()
	loopPos := t.LoopPos(n)
	for v := 0; v < n; v++ {
		if loopPos[v] < 0 {
			return fmt.Errorf("traversal: missing loop for vertex %d", v)
		}
	}
	loops := 0
	arcPos := make(map[[2]graph.V]int, g.M())
	outSeen := make([][]graph.V, n)
	for i, it := range t {
		switch it.Kind {
		case Loop:
			loops++
		case StopArc:
			return fmt.Errorf("traversal: unexpected stop-arc %v at %d in plain traversal", it, i)
		case Arc, LastArc:
			key := [2]graph.V{it.S, it.T}
			if _, dup := arcPos[key]; dup {
				return fmt.Errorf("traversal: arc %v visited twice", it)
			}
			arcPos[key] = i
			if loopPos[it.S] > i {
				return fmt.Errorf("traversal: arc %v precedes loop of its source", it)
			}
			if loopPos[it.T] < i {
				return fmt.Errorf("traversal: arc %v follows loop of its target", it)
			}
			outSeen[it.S] = append(outSeen[it.S], it.T)
			isLast := len(outSeen[it.S]) == g.OutDeg(it.S)
			if isLast != (it.Kind == LastArc) {
				return fmt.Errorf("traversal: arc %v last-arc flag wrong (want last=%v)", it, isLast)
			}
		}
	}
	if loops != n {
		return fmt.Errorf("traversal: %d loops for %d vertices", loops, n)
	}
	if len(arcPos) != g.M() {
		return fmt.Errorf("traversal: %d arcs visited, graph has %d", len(arcPos), g.M())
	}
	for s := 0; s < n; s++ {
		want := g.Out(s)
		got := outSeen[s]
		if len(want) != len(got) {
			return fmt.Errorf("traversal: vertex %d visited %d of %d out-arcs", s, len(got), len(want))
		}
		for k := range want {
			if want[k] != got[k] {
				return fmt.Errorf("traversal: vertex %d out-arcs visited out of embedding order: %v vs %v", s, got, want)
			}
		}
	}
	// Topological: loops are a linear extension.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Reachable(x, y) && loopPos[x] > loopPos[y] {
				return fmt.Errorf("traversal: loops of %d and %d violate reachability", x, y)
			}
		}
	}
	return nil
}

// ValidateDelayed checks the structural invariants of a delayed
// non-separating traversal (Definition 3):
//
//  1. every vertex loops once; every arc of g occurs exactly once;
//  2. loops form a linear extension;
//  3. every arc (s, t) still precedes loop(t);
//  4. after each arc (s, t) is visited, no loop of a vertex strictly below
//     t occurs later (delaying removed all (4)-violations);
//  5. every stop-arc (s, ×) is matched by the delayed last-arc of s later
//     in the sequence, and vice versa.
func ValidateDelayed(t T, g *graph.Digraph, r *graph.Reach) error {
	n := g.N()
	loopPos := t.LoopPos(n)
	for v := 0; v < n; v++ {
		if loopPos[v] < 0 {
			return fmt.Errorf("traversal: missing loop for vertex %d", v)
		}
	}
	lastBelow := make([]int, n)
	for v := 0; v < n; v++ {
		lastBelow[v] = -1
		for x := 0; x < n; x++ {
			if x != v && r.Reachable(x, v) && loopPos[x] > lastBelow[v] {
				lastBelow[v] = loopPos[x]
			}
		}
	}
	arcCount := 0
	stopArcs := map[graph.V]int{} // source -> count of stop-arcs seen
	for i, it := range t {
		switch it.Kind {
		case StopArc:
			stopArcs[it.S]++
		case Arc, LastArc:
			arcCount++
			if !g.HasArc(it.S, it.T) {
				return fmt.Errorf("traversal: arc %v not in graph", it)
			}
			if loopPos[it.T] < i {
				return fmt.Errorf("traversal: arc %v follows loop of its target", it)
			}
			if i < lastBelow[it.T] {
				return fmt.Errorf("traversal: arc %v still separated from target (loop below at %d)", it, lastBelow[it.T])
			}
		}
	}
	if arcCount != g.M() {
		return fmt.Errorf("traversal: %d arcs visited, graph has %d", arcCount, g.M())
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Reachable(x, y) && loopPos[x] > loopPos[y] {
				return fmt.Errorf("traversal: loops of %d and %d violate reachability", x, y)
			}
		}
	}
	// Stop-arc matching: each stop-arc for s must precede s's (delayed)
	// last-arc, and each source has at most one stop-arc.
	for s, c := range stopArcs {
		if c != 1 {
			return fmt.Errorf("traversal: %d stop-arcs for vertex %d", c, s)
		}
		stopAt := -1
		lastAt := -1
		for i, it := range t {
			if it.Kind == StopArc && it.S == s {
				stopAt = i
			}
			if it.Kind == LastArc && it.S == s {
				lastAt = i
			}
		}
		if lastAt < 0 {
			return fmt.Errorf("traversal: stop-arc for %d has no matching last-arc", s)
		}
		if stopAt > lastAt {
			return fmt.Errorf("traversal: stop-arc for %d after its last-arc", s)
		}
	}
	return nil
}
