package traversal

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// diamond with embedding: 0 -> [1, 2] (1 left), 1 -> 3, 2 -> 3.
func diamond() *graph.Digraph {
	g := graph.New(4)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 3)
	g.AddArc(2, 3)
	return g
}

func validDiamondTraversal() T {
	// Canonical: (0,0)(0,1)(1,1)(1,3)(0,2)(2,2)(2,3)(3,3)
	return T{
		{Kind: Loop, S: 0, T: 0},
		{Kind: Arc, S: 0, T: 1},
		{Kind: Loop, S: 1, T: 1},
		{Kind: LastArc, S: 1, T: 3},
		{Kind: LastArc, S: 0, T: 2},
		{Kind: Loop, S: 2, T: 2},
		{Kind: LastArc, S: 2, T: 3},
		{Kind: Loop, S: 3, T: 3},
	}
}

func TestValidateAcceptsCanonical(t *testing.T) {
	g := diamond()
	tr, err := NonSeparating(g)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, validDiamondTraversal()) {
		t.Fatalf("canonical diamond traversal = %v", tr)
	}
	if err := Validate(tr, g, graph.NewReach(g)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	g := diamond()
	r := graph.NewReach(g)
	base := validDiamondTraversal()
	mutate := func(f func(T) T) error {
		c := append(T{}, base...)
		return Validate(f(c), g, r)
	}
	cases := map[string]struct {
		f    func(T) T
		want string
	}{
		"missing loop": {func(c T) T { return append(c[:2], c[3:]...) }, "missing loop"},
		"stop arc in plain": {func(c T) T {
			return append(c, Item{Kind: StopArc, S: 0, T: -1})
		}, "unexpected stop-arc"},
		"duplicate arc": {func(c T) T {
			return append(c, Item{Kind: Arc, S: 0, T: 1}, Item{Kind: Loop, S: 0, T: 0})
		}, ""},
		"arc before source loop": {func(c T) T {
			c[0], c[1] = c[1], c[0] // (0,1) before (0,0)
			return c
		}, "precedes loop of its source"},
		"arc after target loop": {func(c T) T {
			// Move (2,3) after (3,3).
			c[6], c[7] = c[7], c[6]
			return c
		}, "follows loop of its target"},
		"wrong last flag": {func(c T) T {
			c[1].Kind = LastArc // (0,1) is not 0's last arc
			return c
		}, "last-arc flag wrong"},
		"embedding order": {func(c T) T {
			// Visit (0,2) before (0,1): violates the out-arc order.
			return T{
				{Kind: Loop, S: 0, T: 0},
				{Kind: Arc, S: 0, T: 2},
				{Kind: Loop, S: 2, T: 2},
				{Kind: LastArc, S: 2, T: 3},
				{Kind: LastArc, S: 0, T: 1},
				{Kind: Loop, S: 1, T: 1},
				{Kind: LastArc, S: 1, T: 3},
				{Kind: Loop, S: 3, T: 3},
			}
		}, "out of embedding order"},
		"missing arc": {func(c T) T { return append(c[:1], c[2:]...) }, ""},
	}
	for name, c := range cases {
		err := mutate(c.f)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", name, err, c.want)
		}
	}
}

func TestValidateLoopOrderViolation(t *testing.T) {
	// Loops out of topological order: swap the loop positions of 1 and 3
	// while keeping arcs around them (hand-built nonsense sequence).
	g := graph.New(2)
	g.AddArc(0, 1)
	r := graph.NewReach(g)
	bad := T{
		{Kind: Loop, S: 1, T: 1},
		{Kind: Loop, S: 0, T: 0},
		{Kind: LastArc, S: 0, T: 1},
	}
	err := Validate(bad, g, r)
	if err == nil {
		t.Fatal("accepted loop-order violation")
	}
}

func TestValidateDelayedRejections(t *testing.T) {
	g := diamond()
	r := graph.NewReach(g)
	tr, _ := NonSeparating(g)
	good := Delay(tr, r, g.N())
	if err := ValidateDelayed(good, g, r); err != nil {
		t.Fatal(err)
	}

	// Foreign arc.
	bad := append(append(T{}, good...), Item{Kind: Arc, S: 3, T: 0})
	if err := ValidateDelayed(bad, g, r); err == nil || !strings.Contains(err.Error(), "not in graph") {
		t.Fatalf("foreign arc: %v", err)
	}

	// Arc count mismatch (drop one arc).
	var dropped T
	removed := false
	for _, it := range good {
		if !removed && it.Kind == Arc {
			removed = true
			continue
		}
		dropped = append(dropped, it)
	}
	if err := ValidateDelayed(dropped, g, r); err == nil {
		t.Fatal("dropped arc accepted")
	}

	// Duplicate stop-arc.
	withStops := append(append(T{}, good...),
		Item{Kind: StopArc, S: 1, T: -1}, Item{Kind: StopArc, S: 1, T: -1})
	if err := ValidateDelayed(withStops, g, r); err == nil || !strings.Contains(err.Error(), "stop-arcs") {
		t.Fatalf("duplicate stop-arcs: %v", err)
	}

	// Stop-arc whose vertex has no last-arc at all (the sink).
	orphan := append(append(T{}, good...), Item{Kind: StopArc, S: 3, T: -1})
	if err := ValidateDelayed(orphan, g, r); err == nil || !strings.Contains(err.Error(), "no matching last-arc") {
		t.Fatalf("orphan stop-arc: %v", err)
	}

	// Stop-arc placed after its vertex's last-arc.
	var late T
	late = append(late, good...)
	// good ends with ... (3,3); 2's (non-delayed) last-arc (2,3) is
	// inside: appending the stop-arc puts it after, which is invalid.
	late = append(late, Item{Kind: StopArc, S: 2, T: -1})
	if err := ValidateDelayed(late, g, r); err == nil || !strings.Contains(err.Error(), "after its last-arc") {
		t.Fatalf("late stop-arc: %v", err)
	}
}

func TestValidateDelayedStillSeparated(t *testing.T) {
	// The plain traversal of Figure 3 contains separated arcs (e.g.
	// (3,6) before vertices below 6 loop): ValidateDelayed must reject
	// the undelayed sequence.
	g := Figure3()
	r := graph.NewReach(g)
	tr, _ := NonSeparating(g)
	if err := ValidateDelayed(tr, g, r); err == nil || !strings.Contains(err.Error(), "separated") {
		t.Fatalf("err = %v", err)
	}
}

func TestEqualMismatches(t *testing.T) {
	a := validDiamondTraversal()
	if Equal(a, a[:len(a)-1]) {
		t.Fatal("length mismatch not detected")
	}
	b := append(T{}, a...)
	b[0].S = 3
	if Equal(a, b) {
		t.Fatal("item mismatch not detected")
	}
	if !Equal(a, append(T{}, a...)) {
		t.Fatal("identical traversals unequal")
	}
}
