package traversal

import "repro/internal/graph"

// Figure3 constructs the paper's Figure 3 diagram: the nine-vertex
// two-dimensional lattice whose non-separating traversal is listed in
// Figure 4. Vertices are numbered 1..9 in the paper; we use 0..8, so paper
// vertex k is graph vertex k-1. Out-arc insertion order encodes the planar
// left-to-right embedding of the drawing.
func Figure3() *graph.Digraph {
	g := graph.New(9)
	v := func(paper int) graph.V { return paper - 1 }
	add := func(s, t int) { g.AddArc(v(s), v(t)) }
	// Per-vertex out-arcs in left-to-right embedding order.
	add(1, 2)
	add(1, 4)
	add(2, 3)
	add(2, 5)
	add(3, 6)
	add(4, 5)
	add(4, 7)
	add(5, 6)
	add(5, 8)
	add(6, 9)
	add(7, 8)
	add(8, 9)
	return g
}

// Figure4Want is the traversal listed in Figure 4 of the paper, translated
// to 0-based vertices, with the last-arc markings from the figure (solid
// arcs). It is the golden value for the generator regression test.
func Figure4Want() T {
	l := func(x int) Item { return Item{Kind: Loop, S: x - 1, T: x - 1} }
	a := func(s, t int) Item { return Item{Kind: Arc, S: s - 1, T: t - 1} }
	la := func(s, t int) Item { return Item{Kind: LastArc, S: s - 1, T: t - 1} }
	return T{
		l(1), a(1, 2), l(2), a(2, 3), l(3), la(3, 6), la(2, 5), la(1, 4),
		l(4), a(4, 5), l(5), a(5, 6), l(6), la(6, 9), la(5, 8), la(4, 7),
		l(7), la(7, 8), l(8), la(8, 9), l(9),
	}
}

// Figure7Want is the delayed counterpart listed in Figure 7, again 0-based.
// The crossed arcs of the figure are the delayed ones: (3,6), (2,5), (6,9)
// and (5,8); their stop-arcs sit at the original positions.
func Figure7Want() T {
	l := func(x int) Item { return Item{Kind: Loop, S: x - 1, T: x - 1} }
	a := func(s, t int) Item { return Item{Kind: Arc, S: s - 1, T: t - 1} }
	la := func(s, t int) Item { return Item{Kind: LastArc, S: s - 1, T: t - 1} }
	stop := func(s int) Item { return Item{Kind: StopArc, S: s - 1, T: -1} }
	return T{
		l(1), a(1, 2), l(2), a(2, 3), l(3), stop(3), stop(2), la(1, 4),
		l(4), la(2, 5), a(4, 5), l(5), la(3, 6), a(5, 6), l(6), stop(6), stop(5), la(4, 7),
		l(7), la(5, 8), la(7, 8), l(8), la(6, 9), la(8, 9), l(9),
	}
}

// Equal reports whether two traversals are identical item-for-item.
func Equal(a, b T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
