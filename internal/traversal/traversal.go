// Traversal item types and the canonical generator; see doc.go for the
// package-level walkthrough.
//
// A traversal is a sequence of items over the arcs and vertices of a
// diagram: each vertex x appears once as the loop (x, x), each arc (s, t)
// appears once, and delayed traversals additionally contain stop-arc
// markers (s, ×). Arcs carry a Last flag: the last-arc of x is the
// rightmost arc exiting x in the planar embedding, equivalently the last
// arc exiting x that the traversal visits (Definition 2, footnote 2).

package traversal

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Kind discriminates traversal items.
type Kind uint8

const (
	// Loop is the visit (x, x) of vertex x itself.
	Loop Kind = iota
	// Arc is a non-last arc (s, t).
	Arc
	// LastArc is the rightmost arc exiting its source (Definition 2).
	LastArc
	// StopArc is the marker (s, ×) left at the original position of a
	// delayed last-arc (Definition 3, Figure 7).
	StopArc
)

func (k Kind) String() string {
	switch k {
	case Loop:
		return "loop"
	case Arc:
		return "arc"
	case LastArc:
		return "last-arc"
	case StopArc:
		return "stop-arc"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Item is one element of a traversal. For loops S == T; for stop-arcs T is
// unused (the × of the paper) and kept as -1.
type Item struct {
	Kind Kind
	S, T graph.V
}

func (it Item) String() string {
	switch it.Kind {
	case Loop:
		return fmt.Sprintf("(%d,%d)", it.S, it.S)
	case StopArc:
		return fmt.Sprintf("(%d,x)", it.S)
	default:
		return fmt.Sprintf("(%d,%d)", it.S, it.T)
	}
}

// T is a traversal: a sequence of items.
type T []Item

// String renders the traversal in the paper's notation, e.g.
// "(1,1)(1,2)(2,2)…".
func (t T) String() string {
	var b strings.Builder
	for _, it := range t {
		b.WriteString(it.String())
	}
	return b.String()
}

// VertexOrder returns the vertices in loop-visit order, which is the linear
// order <T restricted to vertices.
func (t T) VertexOrder() []graph.V {
	var order []graph.V
	for _, it := range t {
		if it.Kind == Loop {
			order = append(order, it.S)
		}
	}
	return order
}

// LoopPos returns, for a traversal over n vertices, the index of each
// vertex's loop item, or -1 if absent.
func (t T) LoopPos(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, it := range t {
		if it.Kind == Loop {
			pos[it.S] = i
		}
	}
	return pos
}

// NonSeparating produces the canonical non-separating traversal of a
// monotone planar diagram: topological, depth-first, left-to-right
// (Definition 1). The embedding is given by the insertion order of each
// vertex's out-arcs in g (leftmost first). The diagram must have a single
// source. The construction is the greedy leftmost DFS that descends into a
// vertex only once all of its incoming arcs have been visited — on the
// paper's Figure 3 diagram it reproduces the Figure 4 sequence exactly.
func NonSeparating(g *graph.Digraph) (T, error) {
	return traverse(g, false)
}

// RightToLeft produces the mirrored traversal (rightmost-first DFS). The
// pair (NonSeparating, RightToLeft) vertex orders form a Dushnik–Miller
// 2-realizer of the lattice, which is how tests verify two-dimensionality
// (Remark 3).
func RightToLeft(g *graph.Digraph) (T, error) {
	return traverse(g, true)
}

func traverse(g *graph.Digraph, mirror bool) (T, error) {
	srcs := g.Sources()
	if len(srcs) != 1 {
		return nil, fmt.Errorf("traversal: diagram must have exactly one source, found %d", len(srcs))
	}
	n := g.N()
	t := make(T, 0, n+g.M())
	seenIn := make([]int, n)  // number of visited incoming arcs
	nextOut := make([]int, n) // next out-arc index to visit
	visited := make([]bool, n)

	emitArc := func(s, t graph.V, idx, deg int) Item {
		kind := Arc
		last := idx == deg-1
		if mirror {
			last = idx == 0
		}
		if last {
			kind = LastArc
		}
		return Item{Kind: kind, S: s, T: t}
	}

	stack := []graph.V{srcs[0]}
	visited[srcs[0]] = true
	t = append(t, Item{Kind: Loop, S: srcs[0], T: srcs[0]})
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		out := g.Out(v)
		if nextOut[v] == len(out) {
			stack = stack[:len(stack)-1]
			continue
		}
		idx := nextOut[v]
		nextOut[v]++
		pos := idx
		if mirror {
			pos = len(out) - 1 - idx
		}
		w := out[pos]
		t = append(t, emitArc(v, w, pos, len(out)))
		seenIn[w]++
		if seenIn[w] == g.InDeg(w) {
			if visited[w] {
				return nil, fmt.Errorf("traversal: vertex %d reached twice (multi-arc?)", w)
			}
			visited[w] = true
			t = append(t, Item{Kind: Loop, S: w, T: w})
			stack = append(stack, w)
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			return nil, fmt.Errorf("traversal: vertex %d unreachable from source", v)
		}
	}
	return t, nil
}

// Delay applies the T ↦ T′ transformation of Definition 3: every arc
// (s, t) that the traversal visits before some vertex x ⊏ t is moved to
// immediately before t — concretely, just before the final incoming arc of
// t, which is never itself delayed (once every in-arc of t is visited, all
// loops below t have been visited too). If the delayed arc is a last-arc,
// a stop-arc (s, ×) is left at its original position; non-last delayed
// arcs need no marker since Walk takes no action on them. On the paper's
// Figure 4 traversal this reproduces the Figure 7 sequence exactly.
//
// The reachability oracle must describe the same graph the traversal walks.
func Delay(t T, r *graph.Reach, n int) T {
	loopPos := t.LoopPos(n)
	// lastBelow[v] = latest loop position of any x strictly below v.
	lastBelow := make([]int, n)
	// finalIn[v] = position of the last incoming arc of v.
	finalIn := make([]int, n)
	for v := 0; v < n; v++ {
		lastBelow[v] = -1
		finalIn[v] = -1
		for x := 0; x < n; x++ {
			if x != v && r.Reachable(x, v) && loopPos[x] > lastBelow[v] {
				lastBelow[v] = loopPos[x]
			}
		}
	}
	for i, it := range t {
		if it.Kind == Arc || it.Kind == LastArc {
			finalIn[it.T] = i
		}
	}
	delayed := make(map[graph.V][]Item, n) // target vertex -> delayed in-arcs, original order
	out := make(T, 0, len(t)+4)
	for i, it := range t {
		switch it.Kind {
		case Arc, LastArc:
			if i == finalIn[it.T] {
				// Flush the delayed in-arcs of the target right before
				// its final incoming arc.
				out = append(out, delayed[it.T]...)
				out = append(out, it)
				continue
			}
			if i < lastBelow[it.T] {
				delayed[it.T] = append(delayed[it.T], it)
				if it.Kind == LastArc {
					out = append(out, Item{Kind: StopArc, S: it.S, T: -1})
				}
				continue
			}
			out = append(out, it)
		default:
			out = append(out, it)
		}
	}
	return out
}
