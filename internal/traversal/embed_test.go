package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
)

// TestRemark1EmbedRoundTrip closes the loop of the paper's Remark 1:
// given only the digraph of a 2D lattice (embedding destroyed), a
// monotone planar diagram — and hence a non-separating traversal — is
// recovered from a Dushnik–Miller realizer via the dominance drawing, and
// the recovered diagram supports the traversal machinery again.
func TestRemark1EmbedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomStaircase(rng)
		p := order.NewPoset(g)
		left, err := NonSeparating(g)
		if err != nil {
			return false
		}
		right, err := RightToLeft(g)
		if err != nil {
			return false
		}
		real := order.Realizer{L1: left.VertexOrder(), L2: right.VertexOrder()}
		if real.Verify(p) != nil {
			return false
		}
		// Destroy the embedding, then rebuild it from the realizer.
		embedded, err := order.EmbedFromRealizer(order.Scramble(g), real)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// The rebuilt diagram must again admit a valid non-separating
		// traversal whose two orders realize the same poset. (The
		// embedded graph is the transitive reduction, so reachability is
		// unchanged but arcs may differ from g's.)
		pr := order.NewPoset(embedded)
		tl, err := NonSeparating(embedded)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if Validate(tl, embedded, pr.R) != nil {
			return false
		}
		tr2, err := RightToLeft(embedded)
		if err != nil {
			return false
		}
		real2 := order.Realizer{L1: tl.VertexOrder(), L2: tr2.VertexOrder()}
		return real2.Verify(pr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRemark1Figure3 rebuilds the paper's own Figure 3 embedding.
func TestRemark1Figure3(t *testing.T) {
	g := Figure3()
	_ = order.NewPoset(g) // sanity: the figure parses as a poset
	left, _ := NonSeparating(g)
	right, _ := RightToLeft(g)
	real := order.Realizer{L1: left.VertexOrder(), L2: right.VertexOrder()}
	embedded, err := order.EmbedFromRealizer(order.Scramble(g), real)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's diagram is already transitively reduced, so the
	// embedding must reproduce the original arc orders exactly.
	for v := 0; v < g.N(); v++ {
		want := g.Out(v)
		got := embedded.Out(v)
		if len(want) != len(got) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("vertex %d: %v vs %v", v+1, got, want)
			}
		}
	}
}
