// Package traversal implements the traversal layer between lattice
// diagrams and the suprema algorithm: non-separating traversals
// (Definition 1), their delayed variants (Definition 3), the canonical
// generator, and validators.
//
// # Why traversals (Sections 3 and 4 of the paper)
//
// The suprema algorithm never looks at the whole diagram; it consumes a
// linear sequence of arcs and vertex visits ("loops"). For Theorem 1 to
// hold, that sequence must be a NON-SEPARATING traversal: topological
// (nothing visited before its predecessors), depth-first, and
// left-to-right in the planar embedding. NonSeparating implements the
// canonical such order as a greedy leftmost DFS that descends into a
// vertex only once all of its incoming arcs are visited; on the paper's
// Figure 3 diagram it emits the Figure 4 sequence item for item
// (golden-tested). RightToLeft is the mirror, and the pair of vertex
// orders is a Dushnik–Miller 2-realizer — the bridge to internal/order.
//
// The last-arc of a vertex — its rightmost outgoing arc, the final one a
// traversal visits — is the load-bearing concept: visited last-arcs form
// the forest whose roots answer supremum queries (Definition 2,
// Theorem 1).
//
// # Delaying (Definition 3)
//
// An online execution cannot visit the arc (s, t) from a task's final
// operation to its joiner at the arc's non-separating position: t does
// not exist yet. Delay moves every such arc to just before its target's
// final incoming arc and leaves a stop-arc (s, ×) marker at the original
// position — on Figure 4's traversal it reproduces Figure 7 exactly. The
// markers drive the modified algorithm's unvisited-root trick
// (internal/core.Walker.StopArc).
//
// # Validation
//
// Validate and ValidateDelayed check the structural invariants a
// traversal must satisfy (coverage, arc-before-loop ordering, embedding
// order, last-arc flags, stop-arc matching); the semantic property —
// that the algorithm run over the traversal answers correct suprema — is
// established by the Theorem 1/4 property tests in internal/core, which
// is the definition that actually matters.
package traversal
