package race2d

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// raceJSON is the JSON shape of one race report.
type raceJSON struct {
	Location string `json:"location"`
	Kind     string `json:"kind"`
	Current  int    `json:"current_task"`
	Prior    int    `json:"prior_root_task"`
	Precise  bool   `json:"precise"`
}

// reportJSON is the JSON shape of a Report.
type reportJSON struct {
	Engine      string     `json:"engine"`
	Tasks       int        `json:"tasks"`
	Locations   int        `json:"locations"`
	RaceCount   int        `json:"race_count"`
	Races       []raceJSON `json:"races"`
	MemoryBytes int        `json:"memory_bytes"`
	Stats       Stats      `json:"stats"`
}

// MarshalJSON renders the report for tooling. Locations are resolved
// through Report.AddrName when set (DetectSource sets it to the
// source-level names); otherwise they render as hex addresses.
func (r *Report) MarshalJSON() ([]byte, error) {
	return r.marshal(r.locName())
}

// locName returns the report's effective address resolver.
func (r *Report) locName() func(Addr) string {
	if r.AddrName != nil {
		return r.AddrName
	}
	return func(a Addr) string { return fmt.Sprintf("%#x", uint64(a)) }
}

func (r *Report) marshal(locName func(Addr) string) ([]byte, error) {
	out := reportJSON{
		Engine:      r.Engine.String(),
		Tasks:       r.Tasks,
		Locations:   r.Locations,
		RaceCount:   r.Count,
		Races:       make([]raceJSON, 0, len(r.Races)),
		MemoryBytes: r.MemoryBytes,
		Stats:       r.Stats,
	}
	for i, race := range r.Races {
		out.Races = append(out.Races, raceJSON{
			Location: locName(race.Loc),
			Kind:     race.Kind.String(),
			Current:  race.Current,
			Prior:    race.Prior,
			Precise:  i == 0,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON restores a report from its MarshalJSON form, so stats
// pipelines can round-trip reports through files. Locations rendered as
// hex addresses parse back exactly; symbolic names (from a WriteJSON
// resolver) have no inverse and leave the race's Loc zero.
func (r *Report) UnmarshalJSON(data []byte) error {
	var in reportJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	engine, err := ParseEngine(in.Engine)
	if err != nil {
		return err
	}
	*r = Report{
		Count:       in.RaceCount,
		Tasks:       in.Tasks,
		Locations:   in.Locations,
		MemoryBytes: in.MemoryBytes,
		Engine:      engine,
		Stats:       in.Stats,
	}
	for _, race := range in.Races {
		out := Race{Current: race.Current, Prior: race.Prior}
		if a, err := strconv.ParseUint(race.Location, 0, 64); err == nil {
			out.Loc = Addr(a)
		}
		switch race.Kind {
		case core.ReadWrite.String():
			out.Kind = core.ReadWrite
		case core.WriteWrite.String():
			out.Kind = core.WriteWrite
		case core.WriteRead.String():
			out.Kind = core.WriteRead
		default:
			return fmt.Errorf("race2d: unknown race kind %q", race.Kind)
		}
		r.Races = append(r.Races, out)
	}
	return nil
}

// WriteJSON writes the report as indented JSON, resolving location
// names through locName; nil falls back to Report.AddrName and then to
// hex addresses.
func (r *Report) WriteJSON(w io.Writer, locName func(Addr) string) error {
	if locName == nil {
		locName = r.locName()
	}
	data, err := r.marshal(locName)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
